//! The expression language of join conditions.
//!
//! A join condition is `α = β` where `α` is "an expression (e.g., arithmetic,
//! string) involving only attributes of R and possibly constants" and `β`
//! likewise for S (Section 3.2). Queries of type T1 have a bare attribute on
//! each side; type T2 allows arbitrary expressions like
//! `4*R.B + R.C + 8 = 5*S.E + S.D - S.F`.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::{RelationalError, Result};
use crate::tuple::Tuple;
use crate::value::Value;

/// Binary operators usable in join-condition expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// String concatenation.
    Concat,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinOp::Add => write!(f, "+"),
            BinOp::Sub => write!(f, "-"),
            BinOp::Mul => write!(f, "*"),
            BinOp::Concat => write!(f, "||"),
        }
    }
}

/// An expression over the attributes of a *single* relation plus constants.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Reference to an attribute of the expression's relation.
    Attr(String),
    /// A constant.
    Const(Value),
    /// A binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// Attribute reference.
    pub fn attr(name: impl Into<String>) -> Expr {
        Expr::Attr(name.into())
    }

    /// Integer constant.
    pub fn int(v: i64) -> Expr {
        Expr::Const(Value::Int(v))
    }

    /// String constant.
    pub fn str(v: impl Into<String>) -> Expr {
        Expr::Const(Value::Str(v.into()))
    }

    /// Builds `lhs op rhs`.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// The set of attribute names the expression references, in sorted order.
    pub fn attributes(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        self.collect_attrs(&mut out);
        out
    }

    fn collect_attrs<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        match self {
            Expr::Attr(a) => {
                out.insert(a.as_str());
            }
            Expr::Const(_) => {}
            Expr::Bin { lhs, rhs, .. } => {
                lhs.collect_attrs(out);
                rhs.collect_attrs(out);
            }
        }
    }

    /// If the expression is a bare attribute reference, its name.
    pub fn as_single_attr(&self) -> Option<&str> {
        match self {
            Expr::Attr(a) => Some(a),
            _ => None,
        }
    }

    /// Evaluates the expression against a tuple of the expression's relation.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value> {
        match self {
            Expr::Attr(a) => tuple.get(a).cloned(),
            Expr::Const(v) => Ok(v.clone()),
            Expr::Bin { op, lhs, rhs } => {
                let l = lhs.eval(tuple)?;
                let r = rhs.eval(tuple)?;
                apply(*op, &l, &r)
            }
        }
    }

    /// A canonical textual form, used as the grouping key for queries with
    /// equivalent join conditions (Section 4.3.5).
    pub fn canonical(&self) -> String {
        match self {
            Expr::Attr(a) => format!("@{a}"),
            Expr::Const(v) => v.canonical(),
            Expr::Bin { op, lhs, rhs } => {
                format!("({} {op} {})", lhs.canonical(), rhs.canonical())
            }
        }
    }
}

fn apply(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    match (op, l, r) {
        (BinOp::Add, Value::Int(a), Value::Int(b)) => a
            .checked_add(*b)
            .map(Value::Int)
            .ok_or_else(|| overflow("+", a, b)),
        (BinOp::Sub, Value::Int(a), Value::Int(b)) => a
            .checked_sub(*b)
            .map(Value::Int)
            .ok_or_else(|| overflow("-", a, b)),
        (BinOp::Mul, Value::Int(a), Value::Int(b)) => a
            .checked_mul(*b)
            .map(Value::Int)
            .ok_or_else(|| overflow("*", a, b)),
        (BinOp::Concat, Value::Str(a), Value::Str(b)) => {
            let mut s = String::with_capacity(a.len() + b.len());
            s.push_str(a);
            s.push_str(b);
            Ok(Value::Str(s))
        }
        _ => Err(RelationalError::EvalError {
            detail: format!("operator {op} not applicable to ({l}, {r})"),
        }),
    }
}

fn overflow(op: &str, a: &i64, b: &i64) -> RelationalError {
    RelationalError::EvalError {
        detail: format!("integer overflow in {a} {op} {b}"),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Attr(a) => write!(f, "{a}"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Bin { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::value::{DataType, Timestamp};
    use std::sync::Arc;

    fn tuple(b: i64, c: i64) -> Tuple {
        let schema = Arc::new(
            RelationSchema::of("R", &[("B", DataType::Int), ("C", DataType::Int)]).unwrap(),
        );
        Tuple::new(schema, vec![Value::Int(b), Value::Int(c)], Timestamp(0), 0).unwrap()
    }

    #[test]
    fn evaluates_paper_t2_expression() {
        // 4*R.B + R.C + 8 with R.B = 4, R.C = 9 → 33 (the thesis example
        // computes the other side to 25 with different constants; the point
        // is correct arithmetic evaluation).
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::int(4), Expr::attr("B")),
                Expr::attr("C"),
            ),
            Expr::int(8),
        );
        assert_eq!(e.eval(&tuple(4, 9)).unwrap(), Value::Int(33));
    }

    #[test]
    fn collects_attributes() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::attr("B"),
            Expr::bin(BinOp::Mul, Expr::attr("C"), Expr::int(2)),
        );
        let attrs: Vec<&str> = e.attributes().into_iter().collect();
        assert_eq!(attrs, vec!["B", "C"]);
    }

    #[test]
    fn single_attr_detection() {
        assert_eq!(Expr::attr("B").as_single_attr(), Some("B"));
        assert_eq!(Expr::int(1).as_single_attr(), None);
        assert_eq!(
            Expr::bin(BinOp::Add, Expr::attr("B"), Expr::int(0)).as_single_attr(),
            None
        );
    }

    #[test]
    fn type_errors_are_reported() {
        let e = Expr::bin(BinOp::Add, Expr::str("x"), Expr::int(1));
        assert!(matches!(
            e.eval(&tuple(0, 0)),
            Err(RelationalError::EvalError { .. })
        ));
    }

    #[test]
    fn overflow_is_reported() {
        let e = Expr::bin(BinOp::Mul, Expr::int(i64::MAX), Expr::int(2));
        assert!(matches!(
            e.eval(&tuple(0, 0)),
            Err(RelationalError::EvalError { .. })
        ));
    }

    #[test]
    fn concat_strings() {
        let e = Expr::bin(BinOp::Concat, Expr::str("foo"), Expr::str("bar"));
        assert_eq!(e.eval(&tuple(0, 0)).unwrap(), Value::Str("foobar".into()));
    }

    #[test]
    fn canonical_distinguishes_structure() {
        let a = Expr::bin(BinOp::Add, Expr::attr("B"), Expr::int(1));
        let b = Expr::bin(BinOp::Add, Expr::int(1), Expr::attr("B"));
        assert_ne!(a.canonical(), b.canonical());
        assert_eq!(a.canonical(), a.clone().canonical());
    }
}
