//! Engine configuration: which algorithm runs, which optimizations are on.

use cq_overlay::IdSpace;

use crate::faults::FaultConfig;
use crate::recovery::SuspicionConfig;

/// The four distributed evaluation algorithms of Chapter 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Single-attribute index (Section 4.3): one rewriter per query;
    /// evaluators store both rewritten queries and tuples.
    Sai,
    /// Double-attribute index, notifications created when rewritten
    /// *queries* arrive at evaluators (Section 4.4.2): evaluators store
    /// tuples only.
    DaiQ,
    /// Double-attribute index, notifications created when *tuples* arrive at
    /// evaluators (Section 4.4.3): evaluators store rewritten queries only,
    /// and rewriters reindex each rewritten query at most once.
    DaiT,
    /// Double-attribute index over join-condition *values* (Section 4.5):
    /// handles type-T2 queries; tuples are indexed at the attribute level
    /// only.
    DaiV,
}

impl Algorithm {
    /// All four algorithms, in the paper's presentation order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Sai,
        Algorithm::DaiQ,
        Algorithm::DaiT,
        Algorithm::DaiV,
    ];

    /// Short display name as used in the paper's plots.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Sai => "SAI",
            Algorithm::DaiQ => "DAI-Q",
            Algorithm::DaiT => "DAI-T",
            Algorithm::DaiV => "DAI-V",
        }
    }

    /// Whether the algorithm indexes a query at both join attributes.
    pub fn is_double(&self) -> bool {
        !matches!(self, Algorithm::Sai)
    }

    /// Whether tuples are also indexed at the value level (all algorithms
    /// except DAI-V, Section 4.5).
    pub fn indexes_tuples_at_value_level(&self) -> bool {
        !matches!(self, Algorithm::DaiV)
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// How SAI picks the index attribute of a query (Section 4.3.6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IndexStrategy {
    /// Pick one of the two join attributes uniformly at random.
    Random,
    /// Ask both candidate rewriters for their tuple-arrival counts and pick
    /// the attribute with the *lower* rate — fewer triggerings, less
    /// rewriting traffic (the paper's default in the experiments).
    LowestRate,
    /// Ask both candidate rewriters and pick the attribute whose observed
    /// values are more numerous/uniform — better evaluator load spread.
    MostDistinctValues,
}

impl IndexStrategy {
    /// All strategies, for the E4 comparison.
    pub const ALL: [IndexStrategy; 3] = [
        IndexStrategy::Random,
        IndexStrategy::LowestRate,
        IndexStrategy::MostDistinctValues,
    ];

    /// Display name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            IndexStrategy::Random => "random",
            IndexStrategy::LowestRate => "lowest-rate",
            IndexStrategy::MostDistinctValues => "most-distinct",
        }
    }

    /// Whether the strategy requires probing the two candidate rewriters
    /// (costing network traffic) before indexing.
    pub fn probes_rewriters(&self) -> bool {
        !matches!(self, IndexStrategy::Random)
    }
}

/// Full engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Evaluation algorithm.
    pub algorithm: Algorithm,
    /// Identifier-space bits (`m`).
    pub space_bits: u32,
    /// Number of overlay nodes.
    pub nodes: usize,
    /// SAI index-attribute choice strategy.
    pub strategy: IndexStrategy,
    /// Whether rewriters keep a Join Fingers Routing Table (Section 4.7).
    pub use_jfrt: bool,
    /// Attribute-level replication factor `k` (Section 4.7); `1` disables
    /// replication.
    pub replication: usize,
    /// Use the recursive multisend design (`false` = iterative, for E1-style
    /// comparisons).
    pub recursive_multisend: bool,
    /// Whether subscriber inboxes and offline stores retain notification
    /// *contents*. Delivery (routing, traffic, counters) always happens;
    /// large-scale experiment runs disable retention so that millions of
    /// notifications don't dominate simulator memory. Correctness tests and
    /// applications keep it on.
    pub retain_notifications: bool,
    /// DAI-V variant of Section 4.5's "natural extension": compute evaluator
    /// identifiers as `Hash(Key(q) + valJC)` instead of `Hash(valJC)`.
    /// Distributes evaluator load as well as the attribute-prefixed
    /// algorithms, but destroys rewritten-query grouping — the paper
    /// measured roughly a 250× traffic increase. Kept as an ablation knob.
    pub dai_v_keyed: bool,
    /// Coalesce each multisend batch's messages per destination into a
    /// single queue entry ([`crate::Message::Bundle`]) on the
    /// perfect-delivery, untraced transport path. Dispatch order — and
    /// therefore every experiment table — is provably unchanged (see
    /// DESIGN.md); the knob exists so equivalence tests can compare both
    /// paths.
    pub batch_delivery: bool,
    /// RNG seed for all randomized decisions (deterministic runs).
    pub seed: u64,
    /// Fault-injection and recovery knobs (message loss/duplication/delay,
    /// abrupt failures, reliable delivery, k-successor state replication).
    /// The default is fully inert — no faults, no retries, no replicas.
    pub fault: FaultConfig,
    /// In-protocol failure detection + anti-entropy repair
    /// (`engine::recovery`). Disabled by default: failures are then handled
    /// by the harness's oracle `stabilize` calls exactly as before.
    pub suspicion: SuspicionConfig,
}

impl EngineConfig {
    /// A small default configuration suitable for tests and examples.
    pub fn new(algorithm: Algorithm) -> Self {
        EngineConfig {
            algorithm,
            space_bits: 32,
            nodes: 64,
            strategy: IndexStrategy::LowestRate,
            use_jfrt: true,
            replication: 1,
            recursive_multisend: true,
            retain_notifications: true,
            dai_v_keyed: false,
            batch_delivery: true,
            seed: 42,
            fault: FaultConfig::default(),
            suspicion: SuspicionConfig::default(),
        }
    }

    /// Enables/disables notification-content retention (see
    /// [`EngineConfig::retain_notifications`]).
    pub fn with_retained_notifications(mut self, retain: bool) -> Self {
        self.retain_notifications = retain;
        self
    }

    /// Enables the keyed DAI-V variant (see [`EngineConfig::dai_v_keyed`]).
    pub fn with_dai_v_keyed(mut self, keyed: bool) -> Self {
        self.dai_v_keyed = keyed;
        self
    }

    /// Overrides the node count.
    pub fn with_nodes(mut self, n: usize) -> Self {
        self.nodes = n;
        self
    }

    /// Overrides the strategy.
    pub fn with_strategy(mut self, s: IndexStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Enables/disables the JFRT.
    pub fn with_jfrt(mut self, on: bool) -> Self {
        self.use_jfrt = on;
        self
    }

    /// Sets the replication factor.
    pub fn with_replication(mut self, k: usize) -> Self {
        assert!(k >= 1, "replication factor must be at least 1");
        self.replication = k;
        self
    }

    /// Enables/disables per-destination batch delivery (see
    /// [`EngineConfig::batch_delivery`]).
    pub fn with_batch_delivery(mut self, on: bool) -> Self {
        self.batch_delivery = on;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fault-injection configuration (see [`FaultConfig`]).
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// Sets the failure-detection configuration (see [`SuspicionConfig`]).
    pub fn with_suspicion(mut self, suspicion: SuspicionConfig) -> Self {
        self.suspicion = suspicion;
        self
    }

    /// The identifier space implied by `space_bits`.
    pub fn space(&self) -> IdSpace {
        IdSpace::new(self.space_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_properties() {
        assert!(!Algorithm::Sai.is_double());
        assert!(Algorithm::DaiQ.is_double());
        assert!(Algorithm::DaiT.is_double());
        assert!(Algorithm::DaiV.is_double());
        assert!(Algorithm::Sai.indexes_tuples_at_value_level());
        assert!(!Algorithm::DaiV.indexes_tuples_at_value_level());
    }

    #[test]
    fn builder_chains() {
        let c = EngineConfig::new(Algorithm::Sai)
            .with_nodes(10)
            .with_jfrt(false)
            .with_replication(4)
            .with_seed(7)
            .with_fault(FaultConfig::lossy(0.1, 3));
        assert_eq!(c.nodes, 10);
        assert!(!c.use_jfrt);
        assert_eq!(c.replication, 4);
        assert_eq!(c.seed, 7);
        assert_eq!(c.fault.loss_rate, 0.1);
    }

    #[test]
    fn default_fault_config_is_inert() {
        let c = EngineConfig::new(Algorithm::Sai);
        assert!(!c.fault.is_active());
    }

    #[test]
    #[should_panic(expected = "replication factor")]
    fn zero_replication_panics() {
        let _ = EngineConfig::new(Algorithm::Sai).with_replication(0);
    }

    #[test]
    fn strategy_probing() {
        assert!(!IndexStrategy::Random.probes_rewriters());
        assert!(IndexStrategy::LowestRate.probes_rewriters());
    }
}
