//! Attribute values.
//!
//! The paper's expressions are "arithmetic, string" over attributes and
//! constants (Section 3.2); values are hashed "treated as a string" when
//! computing value-level identifiers (Section 4.2). [`Value::canonical`]
//! provides that string form.

use std::fmt;

/// The type of an attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Str => write!(f, "STRING"),
        }
    }
}

/// A single attribute value.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// String value.
    Str(String),
}

impl Value {
    /// The value's type.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Str(_) => DataType::Str,
        }
    }

    /// The canonical string form used for value-level hashing
    /// (`Hash(R + A + v)` — "when the value of an attribute is numeric,
    /// this value is also treated as a string").
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        self.canonical_into(&mut out);
        out
    }

    /// Appends the canonical form to `out` without allocating an
    /// intermediate string. Hot paths that already hold a buffer (or a
    /// [`crate::Tuple`], which caches its canonical forms) should prefer
    /// this over [`Value::canonical`].
    pub fn canonical_into(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            Value::Int(i) => {
                let _ = write!(out, "i:{i}");
            }
            Value::Str(s) => {
                out.push_str("s:");
                out.push_str(s);
            }
        }
    }

    /// Integer content, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// String content, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Int(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A logical timestamp (the simulator's synchronized clock; the paper assumes
/// NTP-synchronized real clocks, see DESIGN.md "Substitutions").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp(pub u64);

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_disambiguates_types() {
        assert_ne!(
            Value::Int(42).canonical(),
            Value::Str("42".into()).canonical()
        );
    }

    #[test]
    fn canonical_is_injective_on_ints() {
        assert_ne!(Value::Int(1).canonical(), Value::Int(11).canonical());
        assert_ne!(Value::Int(-1).canonical(), Value::Int(1).canonical());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7), Value::Int(7));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Int(7).as_str(), None);
    }

    #[test]
    fn timestamps_order() {
        assert!(Timestamp(1) < Timestamp(2));
    }
}
