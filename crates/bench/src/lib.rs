//! # cq-bench — criterion benchmark harness
//!
//! One benchmark group per reproduced figure/table (see DESIGN.md's
//! experiment index) plus micro-benchmarks of the hot operations:
//! routing, multisend, tuple insertion per algorithm, and SQL parsing.
//!
//! Run with `cargo bench --workspace`. Each figure-level benchmark times a
//! `Scale::Quick` run of the corresponding experiment; the full-scale
//! numbers for EXPERIMENTS.md come from `cargo run --release -p cq-sim
//! --bin experiments -- --full`.

/// Re-export used by the benches to keep their imports uniform.
pub use cq_sim::experiments::{self, Scale};

/// An allocation-counting wrapper around the system allocator, used by the
/// `alloc_audit` binary (behind the `count-allocs` feature) to verify that
/// the join-evaluation kernels stay allocation-free per candidate: the
/// audit measures allocations per event at two table sizes an order of
/// magnitude apart and checks the per-event count does not grow with the
/// candidate count.
pub mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// Counts every `alloc`/`realloc` (frees are not counted — the audit
    /// cares about allocation *pressure*, not leaks).
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    /// Total allocations since process start.
    pub fn allocations() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}
