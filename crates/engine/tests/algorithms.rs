//! End-to-end correctness of the four algorithms: every algorithm must
//! deliver exactly the notification-content set the centralized oracle
//! computes, under a variety of interleavings of queries and tuples.

use cq_engine::{Algorithm, EngineConfig, Network, Oracle, TrafficKind};
use cq_relational::{Catalog, DataType, RelationSchema, Value};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(
        RelationSchema::of(
            "R",
            &[
                ("A", DataType::Int),
                ("B", DataType::Int),
                ("C", DataType::Int),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(
        RelationSchema::of(
            "S",
            &[
                ("D", DataType::Int),
                ("E", DataType::Int),
                ("F", DataType::Int),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c
}

fn network(alg: Algorithm) -> Network {
    Network::new(
        EngineConfig::new(alg).with_nodes(48).with_seed(7),
        catalog(),
    )
}

fn check_against_oracle(net: &Network) {
    let mut oracle = Oracle::new();
    oracle.ingest(net.posed_queries(), net.inserted_tuples());
    let expected = oracle.expected().unwrap();
    let delivered = net.delivered_set();
    assert_eq!(
        delivered,
        expected,
        "algorithm {:?} diverged from the oracle",
        net.config().algorithm
    );
}

/// A deterministic pseudo-random workload driver shared by the tests.
fn run_mixed_workload(alg: Algorithm, queries: usize, tuples: usize, domain: i64) -> Network {
    let mut net = network(alg);
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..queries {
        let poser = net.node_at((rnd() % 48) as usize);
        net.pose_query_sql(poser, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
            .unwrap();
        // interleave a few tuples between query postings
        for _ in 0..(tuples / queries.max(1)) {
            let from = net.node_at((rnd() % 48) as usize);
            let rel = if rnd() % 2 == 0 { "R" } else { "S" };
            let vals: Vec<Value> = (0..3)
                .map(|_| Value::Int((rnd() % domain as u64) as i64))
                .collect();
            net.insert_tuple(from, rel, vals).unwrap();
        }
        let _ = i;
    }
    net
}

#[test]
fn sai_matches_oracle_on_mixed_workload() {
    let net = run_mixed_workload(Algorithm::Sai, 8, 80, 6);
    assert!(
        !net.delivered_set().is_empty(),
        "workload must produce matches"
    );
    check_against_oracle(&net);
}

#[test]
fn dai_q_matches_oracle_on_mixed_workload() {
    let net = run_mixed_workload(Algorithm::DaiQ, 8, 80, 6);
    assert!(!net.delivered_set().is_empty());
    check_against_oracle(&net);
}

#[test]
fn dai_t_matches_oracle_on_mixed_workload() {
    let net = run_mixed_workload(Algorithm::DaiT, 8, 80, 6);
    assert!(!net.delivered_set().is_empty());
    check_against_oracle(&net);
}

#[test]
fn dai_v_matches_oracle_on_mixed_workload() {
    let net = run_mixed_workload(Algorithm::DaiV, 8, 80, 6);
    assert!(!net.delivered_set().is_empty());
    check_against_oracle(&net);
}

#[test]
fn tuples_inserted_before_a_query_never_trigger_it() {
    // Time semantics (Section 3.2): pubT(t) >= insT(q) for *both* tuples.
    for alg in Algorithm::ALL {
        let mut net = network(alg);
        let a = net.node_at(0);
        net.insert_tuple(a, "R", vec![Value::Int(1), Value::Int(7), Value::Int(0)])
            .unwrap();
        net.insert_tuple(a, "S", vec![Value::Int(2), Value::Int(7), Value::Int(0)])
            .unwrap();
        net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
            .unwrap();
        assert!(
            net.delivered_set().is_empty(),
            "{alg}: old tuples must not match"
        );
        // A pair straddling the insertion time must not match either.
        net.insert_tuple(a, "S", vec![Value::Int(3), Value::Int(7), Value::Int(0)])
            .unwrap();
        assert!(
            net.delivered_set().is_empty(),
            "{alg}: pre-query R tuple must not join post-query S tuple"
        );
        // A fully post-query pair must match.
        net.insert_tuple(a, "R", vec![Value::Int(4), Value::Int(7), Value::Int(0)])
            .unwrap();
        assert_eq!(net.delivered_set().len(), 1, "{alg}");
        check_against_oracle(&net);
    }
}

#[test]
fn both_arrival_orders_produce_the_join() {
    for alg in Algorithm::ALL {
        let mut net = network(alg);
        let a = net.node_at(0);
        net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
            .unwrap();
        // R before S
        net.insert_tuple(a, "R", vec![Value::Int(1), Value::Int(5), Value::Int(0)])
            .unwrap();
        net.insert_tuple(a, "S", vec![Value::Int(2), Value::Int(5), Value::Int(0)])
            .unwrap();
        // S before R (different join value to keep pairs apart)
        net.insert_tuple(a, "S", vec![Value::Int(3), Value::Int(6), Value::Int(0)])
            .unwrap();
        net.insert_tuple(a, "R", vec![Value::Int(4), Value::Int(6), Value::Int(0)])
            .unwrap();
        let got = net.delivered_set();
        assert_eq!(got.len(), 2, "{alg}: both orders must join, got {got:?}");
        check_against_oracle(&net);
    }
}

#[test]
fn no_duplicate_notifications_with_multiplicity() {
    // The DAI algorithms have two rewriters per query; Figure 4.3 shows the
    // naive design would create duplicates. Count with multiplicity at the
    // subscriber inbox: each (distinct-content) pair must arrive exactly
    // once.
    for alg in Algorithm::ALL {
        let mut net = network(alg);
        let a = net.node_at(0);
        net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
            .unwrap();
        net.insert_tuple(a, "R", vec![Value::Int(1), Value::Int(7), Value::Int(0)])
            .unwrap();
        net.insert_tuple(a, "S", vec![Value::Int(2), Value::Int(7), Value::Int(0)])
            .unwrap();
        let inbox = net.inbox(a);
        assert_eq!(
            inbox.len(),
            1,
            "{alg}: expected exactly one notification, got {inbox:?}"
        );
    }
}

#[test]
fn filters_restrict_matches() {
    for alg in Algorithm::ALL {
        let mut net = network(alg);
        let a = net.node_at(0);
        net.pose_query_sql(
            a,
            "SELECT R.A, S.D FROM R, S WHERE R.B = S.E AND S.F = 1 AND R.C = 2",
        )
        .unwrap();
        // matches the join but fails R.C = 2
        net.insert_tuple(a, "R", vec![Value::Int(1), Value::Int(7), Value::Int(0)])
            .unwrap();
        net.insert_tuple(a, "S", vec![Value::Int(2), Value::Int(7), Value::Int(1)])
            .unwrap();
        assert!(net.delivered_set().is_empty(), "{alg}");
        // passes both filters
        net.insert_tuple(a, "R", vec![Value::Int(9), Value::Int(7), Value::Int(2)])
            .unwrap();
        assert_eq!(net.delivered_set().len(), 1, "{alg}");
        // fails S.F = 1
        net.insert_tuple(a, "S", vec![Value::Int(3), Value::Int(7), Value::Int(0)])
            .unwrap();
        assert_eq!(net.delivered_set().len(), 1, "{alg}");
        check_against_oracle(&net);
    }
}

#[test]
fn multiple_queries_same_condition_all_notified() {
    // Grouping (Section 4.3.5) must not lose per-query notifications.
    for alg in Algorithm::ALL {
        let mut net = network(alg);
        let a = net.node_at(0);
        let b = net.node_at(1);
        net.pose_query_sql(a, "SELECT R.A FROM R, S WHERE R.B = S.E")
            .unwrap();
        net.pose_query_sql(b, "SELECT S.D FROM R, S WHERE R.B = S.E")
            .unwrap();
        net.insert_tuple(a, "R", vec![Value::Int(1), Value::Int(4), Value::Int(0)])
            .unwrap();
        net.insert_tuple(a, "S", vec![Value::Int(2), Value::Int(4), Value::Int(0)])
            .unwrap();
        assert_eq!(net.inbox(a).len(), 1, "{alg}: subscriber a");
        assert_eq!(net.inbox(b).len(), 1, "{alg}: subscriber b");
        check_against_oracle(&net);
    }
}

#[test]
fn t2_queries_run_under_dai_v() {
    let mut net = network(Algorithm::DaiV);
    let a = net.node_at(0);
    // The paper's Section 4.5 example query.
    net.pose_query_sql(
        a,
        "SELECT R.A, S.D FROM R, S WHERE 4*R.B + R.C + 8 = 5*S.E + S.D - S.F",
    )
    .unwrap();
    // valJC(left) = 4*4 + 9 + 8 = 33; right: 5*6 + 5 - 2 = 33.
    net.insert_tuple(a, "R", vec![Value::Int(1), Value::Int(4), Value::Int(9)])
        .unwrap();
    net.insert_tuple(a, "S", vec![Value::Int(5), Value::Int(6), Value::Int(2)])
        .unwrap();
    let got = net.delivered_set();
    assert_eq!(got.len(), 1);
    let n = got.iter().next().unwrap();
    assert_eq!(n.values, vec![Value::Int(1), Value::Int(5)]);
    check_against_oracle(&net);
}

#[test]
fn t2_queries_are_rejected_by_t1_algorithms() {
    for alg in [Algorithm::Sai, Algorithm::DaiQ, Algorithm::DaiT] {
        let mut net = network(alg);
        let a = net.node_at(0);
        let err = net
            .pose_query_sql(a, "SELECT R.A FROM R, S WHERE R.B + R.C = S.E")
            .unwrap_err();
        assert!(
            matches!(err, cq_engine::EngineError::UnsupportedByAlgorithm { .. }),
            "{alg}: {err}"
        );
    }
}

#[test]
fn replication_preserves_correctness() {
    for alg in Algorithm::ALL {
        let mut net = Network::new(
            EngineConfig::new(alg)
                .with_nodes(48)
                .with_replication(4)
                .with_seed(3),
            catalog(),
        );
        let a = net.node_at(0);
        net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
            .unwrap();
        for v in 0..6 {
            net.insert_tuple(
                a,
                "R",
                vec![Value::Int(v), Value::Int(v % 3), Value::Int(0)],
            )
            .unwrap();
            net.insert_tuple(
                a,
                "S",
                vec![Value::Int(v + 10), Value::Int(v % 3), Value::Int(0)],
            )
            .unwrap();
        }
        check_against_oracle(&net);
    }
}

#[test]
fn retention_off_preserves_counts_and_traffic() {
    // Large-scale experiment runs disable notification retention; delivery
    // counts and traffic must be identical, only the bodies disappear.
    let run = |retain: bool| {
        let mut net = Network::new(
            EngineConfig::new(Algorithm::Sai)
                .with_nodes(48)
                .with_retained_notifications(retain)
                .with_seed(6),
            catalog(),
        );
        let a = net.node_at(0);
        net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
            .unwrap();
        for i in 0..12 {
            net.insert_tuple(
                a,
                "R",
                vec![Value::Int(i), Value::Int(i % 3), Value::Int(0)],
            )
            .unwrap();
            net.insert_tuple(
                a,
                "S",
                vec![Value::Int(i), Value::Int(i % 3), Value::Int(0)],
            )
            .unwrap();
        }
        (
            net.metrics().notifications_delivered,
            net.metrics().traffic(TrafficKind::Notify),
            net.inbox(a).len(),
        )
    };
    let (count_on, traffic_on, inbox_on) = run(true);
    let (count_off, traffic_off, inbox_off) = run(false);
    assert_eq!(count_on, count_off);
    assert_eq!(traffic_on, traffic_off);
    assert!(inbox_on > 0);
    assert_eq!(inbox_off, 0, "bodies are not retained");
}

#[test]
fn keyed_dai_v_matches_oracle() {
    // The Section 4.5 extension trades traffic for distribution; results
    // must be identical to the grouped variant and the oracle.
    let mut net = Network::new(
        EngineConfig::new(Algorithm::DaiV)
            .with_nodes(48)
            .with_dai_v_keyed(true)
            .with_seed(8),
        catalog(),
    );
    let a = net.node_at(0);
    let b = net.node_at(1);
    net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
        .unwrap();
    net.pose_query_sql(b, "SELECT R.C FROM R, S WHERE R.B = S.E")
        .unwrap();
    net.pose_query_sql(a, "SELECT S.F FROM R, S WHERE 2*R.B = S.E + S.F")
        .unwrap();
    for i in 0..8 {
        net.insert_tuple(
            a,
            "R",
            vec![Value::Int(i), Value::Int(i % 3), Value::Int(9)],
        )
        .unwrap();
        net.insert_tuple(
            a,
            "S",
            vec![Value::Int(i), Value::Int(i % 3), Value::Int(i % 4)],
        )
        .unwrap();
    }
    check_against_oracle(&net);
    assert!(!net.delivered_set().is_empty());
}

#[test]
fn replication_does_not_duplicate_triggering() {
    // Regression: with k replicas, a tuple is routed to exactly one replica
    // and must trigger each query exactly once — even when several replica
    // identifiers happen to be owned by the same physical node. DAI-Q has
    // no rewritten-query dedup, so any double-trigger shows up as a
    // duplicate inbox entry.
    for k in [2usize, 4, 8] {
        let mut net = Network::new(
            EngineConfig::new(Algorithm::DaiQ)
                .with_nodes(8)
                .with_replication(k)
                .with_seed(k as u64),
            catalog(),
        );
        let a = net.node_at(0);
        net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
            .unwrap();
        net.insert_tuple(a, "R", vec![Value::Int(1), Value::Int(7), Value::Int(0)])
            .unwrap();
        net.insert_tuple(a, "S", vec![Value::Int(2), Value::Int(7), Value::Int(0)])
            .unwrap();
        assert_eq!(
            net.inbox(a).len(),
            1,
            "k={k}: one matching pair must produce exactly one notification"
        );
    }
}

#[test]
fn iterative_multisend_preserves_correctness() {
    let mut cfg = EngineConfig::new(Algorithm::Sai)
        .with_nodes(48)
        .with_seed(5);
    cfg.recursive_multisend = false;
    let mut net = Network::new(cfg, catalog());
    let a = net.node_at(0);
    net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
        .unwrap();
    net.insert_tuple(a, "R", vec![Value::Int(1), Value::Int(7), Value::Int(0)])
        .unwrap();
    net.insert_tuple(a, "S", vec![Value::Int(2), Value::Int(7), Value::Int(0)])
        .unwrap();
    check_against_oracle(&net);
}

#[test]
fn jfrt_off_changes_traffic_not_results() {
    let run = |jfrt: bool| {
        let mut net = Network::new(
            EngineConfig::new(Algorithm::Sai)
                .with_nodes(64)
                .with_jfrt(jfrt)
                .with_seed(11),
            catalog(),
        );
        let a = net.node_at(0);
        net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
            .unwrap();
        // Many tuples with the same join value on both sides: whichever side
        // SAI indexed the query by, the reindex target repeats — which is
        // exactly what the JFRT exploits.
        for i in 0..20 {
            net.insert_tuple(a, "R", vec![Value::Int(i), Value::Int(7), Value::Int(0)])
                .unwrap();
            net.insert_tuple(
                a,
                "S",
                vec![Value::Int(100 + i), Value::Int(7), Value::Int(0)],
            )
            .unwrap();
        }
        let hops = net.metrics().traffic(TrafficKind::Reindex).hops;
        let delivered = net.delivered_set();
        (hops, delivered)
    };
    let (hops_on, set_on) = run(true);
    let (hops_off, set_off) = run(false);
    assert_eq!(set_on, set_off, "JFRT must not change results");
    assert!(
        hops_on < hops_off,
        "JFRT must reduce reindex hops ({hops_on} !< {hops_off})"
    );
}

#[test]
fn dai_t_reindexes_each_rewritten_query_once() {
    // Section 4.4.3: after the rewritten queries for a value have been
    // distributed, repeated tuples with that value cause no reindex traffic.
    let mut net = network(Algorithm::DaiT);
    let a = net.node_at(0);
    net.pose_query_sql(a, "SELECT S.D FROM R, S WHERE R.B = S.E")
        .unwrap();
    net.insert_tuple(a, "R", vec![Value::Int(1), Value::Int(7), Value::Int(0)])
        .unwrap();
    let first = net.metrics().traffic(TrafficKind::Reindex).messages;
    assert!(first >= 1);
    // Same select values (none on R side... select is S.D so R contributes
    // no select values) and same join value → identical rewritten key.
    net.insert_tuple(a, "R", vec![Value::Int(2), Value::Int(7), Value::Int(0)])
        .unwrap();
    let second = net.metrics().traffic(TrafficKind::Reindex).messages;
    assert_eq!(
        first, second,
        "duplicate rewritten query must not be resent"
    );
}

#[test]
fn strategy_variants_all_correct() {
    use cq_engine::IndexStrategy;
    for strategy in IndexStrategy::ALL {
        let mut net = Network::new(
            EngineConfig::new(Algorithm::Sai)
                .with_nodes(48)
                .with_strategy(strategy)
                .with_seed(9),
            catalog(),
        );
        let a = net.node_at(0);
        // Warm up arrival statistics so probing strategies have data.
        for i in 0..10 {
            net.insert_tuple(a, "R", vec![Value::Int(i), Value::Int(i), Value::Int(0)])
                .unwrap();
            net.insert_tuple(
                a,
                "S",
                vec![Value::Int(i), Value::Int(i % 2), Value::Int(0)],
            )
            .unwrap();
        }
        net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
            .unwrap();
        net.insert_tuple(a, "R", vec![Value::Int(50), Value::Int(3), Value::Int(0)])
            .unwrap();
        net.insert_tuple(a, "S", vec![Value::Int(51), Value::Int(3), Value::Int(0)])
            .unwrap();
        check_against_oracle(&net);
        if strategy.probes_rewriters() {
            assert!(net.metrics().traffic(TrafficKind::Probe).messages >= 2);
        }
    }
}

#[test]
fn string_joins_work() {
    for alg in Algorithm::ALL {
        let mut c = Catalog::new();
        c.register(
            RelationSchema::of("P", &[("Name", DataType::Str), ("City", DataType::Str)]).unwrap(),
        )
        .unwrap();
        c.register(
            RelationSchema::of("Q", &[("Town", DataType::Str), ("Zip", DataType::Int)]).unwrap(),
        )
        .unwrap();
        let mut net = Network::new(EngineConfig::new(alg).with_nodes(32), c);
        let a = net.node_at(0);
        net.pose_query_sql(a, "SELECT P.Name, Q.Zip FROM P, Q WHERE P.City = Q.Town")
            .unwrap();
        net.insert_tuple(a, "P", vec![Value::from("alice"), Value::from("chania")])
            .unwrap();
        net.insert_tuple(a, "Q", vec![Value::from("chania"), Value::Int(73100)])
            .unwrap();
        net.insert_tuple(a, "Q", vec![Value::from("athens"), Value::Int(10000)])
            .unwrap();
        let got = net.delivered_set();
        assert_eq!(got.len(), 1, "{alg}");
        assert_eq!(
            got.iter().next().unwrap().values,
            vec![Value::from("alice"), Value::Int(73100)]
        );
    }
}
