//! Batched per-destination delivery must be a pure transport optimization:
//! a network with `batch_delivery` on and one with it off, driven by the
//! same workload, must agree on every per-node inbox *sequence* (delivery
//! order, not just content), the delivered notification set, and the full
//! metrics block — with and without an active fault pipe (with faults the
//! transport bypasses bundling entirely, so equivalence is by
//! construction; the property pins that the bypass actually happens).
//!
//! Also pins the zero-clone join-evaluation kernels against the oracle for
//! all four algorithms: iterating table entries in place must produce
//! exactly the match sets the clone-and-collect implementation did.

use cq_engine::{Algorithm, EngineConfig, FaultConfig, Network, Oracle};
use cq_relational::{Catalog, DataType, Notification, RelationSchema, Value};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap())
        .unwrap();
    c.register(RelationSchema::of("S", &[("D", DataType::Int), ("E", DataType::Int)]).unwrap())
        .unwrap();
    c
}

/// One step of a random workload.
#[derive(Clone, Debug)]
enum Step {
    PoseSimple,
    PoseWithFilter(i64),
    InsertR(i64, i64),
    InsertS(i64, i64),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        1 => Just(Step::PoseSimple),
        1 => (-2i64..2).prop_map(Step::PoseWithFilter),
        4 => ((-20i64..20), (-3i64..3)).prop_map(|(a, b)| Step::InsertR(a, b)),
        4 => ((-20i64..20), (-3i64..3)).prop_map(|(d, e)| Step::InsertS(d, e)),
    ]
}

fn run(alg: Algorithm, steps: &[Step], seed: u64, fault: FaultConfig, batch: bool) -> Network {
    let mut net = Network::new(
        EngineConfig::new(alg)
            .with_nodes(32)
            .with_seed(seed)
            .with_fault(fault)
            .with_batch_delivery(batch),
        catalog(),
    );
    for (n, step) in steps.iter().enumerate() {
        let from = net.node_at(n % 32);
        match step {
            Step::PoseSimple => {
                net.pose_query_sql(from, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
                    .unwrap();
            }
            Step::PoseWithFilter(v) => {
                net.pose_query_sql(
                    from,
                    &format!("SELECT R.A FROM R, S WHERE R.B = S.E AND S.D = {v}"),
                )
                .unwrap();
            }
            Step::InsertR(a, b) => {
                net.insert_tuple(from, "R", vec![Value::Int(*a), Value::Int(*b)])
                    .unwrap();
            }
            Step::InsertS(d, e) => {
                net.insert_tuple(from, "S", vec![Value::Int(*d), Value::Int(*e)])
                    .unwrap();
            }
        }
    }
    net
}

/// Every per-node inbox sequence — order-sensitive, unlike
/// [`Network::delivered_set`].
fn inbox_sequences(net: &Network) -> Vec<Vec<Notification>> {
    (0..net.alive_count())
        .map(|i| net.inbox(net.node_at(i)).to_vec())
        .collect()
}

fn assert_equivalent(alg: Algorithm, steps: &[Step], seed: u64, fault: FaultConfig) {
    let bundled = run(alg, steps, seed, fault.clone(), true);
    let per_msg = run(alg, steps, seed, fault, false);
    assert_eq!(
        inbox_sequences(&bundled),
        inbox_sequences(&per_msg),
        "{alg}: inbox order diverged between bundled and per-message delivery"
    );
    assert_eq!(
        bundled.delivered_set(),
        per_msg.delivered_set(),
        "{alg}: delivered set diverged"
    );
    assert_eq!(
        format!("{:?}", bundled.metrics()),
        format!("{:?}", per_msg.metrics()),
        "{alg}: metrics diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn bundled_delivery_is_byte_identical_to_per_message(
        steps in prop::collection::vec(step_strategy(), 1..40),
        seed in 0u64..1000,
    ) {
        for alg in Algorithm::ALL {
            assert_equivalent(alg, &steps, seed, FaultConfig::default());
        }
    }

    #[test]
    fn bundled_delivery_is_byte_identical_under_faults(
        steps in prop::collection::vec(step_strategy(), 1..30),
        seed in 0u64..1000,
        loss_pct in 0u32..31,
        fault_seed in 0u64..1000,
    ) {
        let loss = f64::from(loss_pct) / 100.0;
        for alg in Algorithm::ALL {
            assert_equivalent(alg, &steps, seed, FaultConfig::lossy(loss, fault_seed));
        }
    }
}

/// The zero-clone kernels (in-place ALQT/VLQT/VLTT/value-store scans) must
/// produce exactly the oracle's match set for every algorithm — T1 for all
/// four, plus the paper's T2 example under DAI-V.
#[test]
fn zero_clone_kernels_match_oracle_for_all_algorithms() {
    let steps: Vec<Step> = (0..3)
        .map(|_| Step::PoseSimple)
        .chain((0..2).map(Step::PoseWithFilter))
        .chain((0..24).map(|i| {
            if i % 2 == 0 {
                Step::InsertR(i, i % 4)
            } else {
                Step::InsertS(i, i % 4)
            }
        }))
        .collect();
    for alg in Algorithm::ALL {
        let net = run(alg, &steps, 7, FaultConfig::default(), true);
        let mut oracle = Oracle::new();
        oracle.ingest(net.posed_queries(), net.inserted_tuples());
        assert_eq!(
            net.delivered_set(),
            oracle.expected().unwrap(),
            "{alg}: zero-clone kernels diverged from the oracle"
        );
    }
}

/// T2 coverage of the zero-clone DAI-V path (arithmetic join condition —
/// exercises `default_index_attr`'s random pick over the condition
/// attributes and the value-store scan).
#[test]
fn zero_clone_dai_v_t2_matches_oracle() {
    let mut c = Catalog::new();
    c.register(
        RelationSchema::of(
            "R",
            &[
                ("A", DataType::Int),
                ("B", DataType::Int),
                ("C", DataType::Int),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(
        RelationSchema::of(
            "S",
            &[
                ("D", DataType::Int),
                ("E", DataType::Int),
                ("F", DataType::Int),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    let mut net = Network::new(
        EngineConfig::new(Algorithm::DaiV)
            .with_nodes(32)
            .with_seed(7),
        c,
    );
    let a = net.node_at(0);
    net.pose_query_sql(
        a,
        "SELECT R.A, S.D FROM R, S WHERE 4*R.B + R.C + 8 = 5*S.E + S.D - S.F",
    )
    .unwrap();
    for i in 0..12i64 {
        let from = net.node_at((i as usize) % 32);
        net.insert_tuple(
            from,
            "R",
            vec![Value::Int(i), Value::Int(i % 3), Value::Int(i % 5)],
        )
        .unwrap();
        net.insert_tuple(
            from,
            "S",
            vec![Value::Int(i % 5), Value::Int(i % 3), Value::Int(i % 2)],
        )
        .unwrap();
    }
    let mut oracle = Oracle::new();
    oracle.ingest(net.posed_queries(), net.inserted_tuples());
    assert_eq!(net.delivered_set(), oracle.expected().unwrap());
}
