//! SAI — the single-attribute-index algorithm (Section 4.3).
//!
//! A query is indexed on *one* side (chosen by the configured
//! [`IndexStrategy`]); evaluators store both rewritten queries and tuples,
//! so either arrival order produces the match.

use std::cmp::Ordering;
use std::sync::Arc;

use cq_overlay::Id;
use cq_relational::{JoinQuery, QueryRef, QueryType, RewrittenQuery, Side, Tuple};
use rand::Rng;

use super::common;
use crate::config::{Algorithm, IndexStrategy};
use crate::error::{EngineError, Result};
use crate::protocol::{Effect, NodeCtx, Protocol};
use crate::replication::ReplicaItem;
use crate::tables::{StoredRewritten, StoredTuple};
use crate::trace::TraceEvent;

/// The SAI protocol (Section 4.3).
#[derive(Clone, Copy, Debug, Default)]
pub struct SaiProtocol;

impl SaiProtocol {
    /// Picks the side to index the query by (Section 4.3.6): random, or by
    /// probing the two candidate rewriters' arrival statistics.
    fn choose_index_side(&self, ctx: &mut NodeCtx<'_>, query: &JoinQuery) -> Result<Side> {
        match ctx.config().strategy {
            IndexStrategy::Random => Ok(if ctx.rng().gen::<bool>() {
                Side::Left
            } else {
                Side::Right
            }),
            IndexStrategy::LowestRate => {
                let (l, r) = common::probe_rewriters(self, ctx, query)?;
                Ok(match l.0.cmp(&r.0) {
                    Ordering::Less => Side::Left,
                    Ordering::Greater => Side::Right,
                    Ordering::Equal => {
                        if ctx.rng().gen::<bool>() {
                            Side::Left
                        } else {
                            Side::Right
                        }
                    }
                })
            }
            IndexStrategy::MostDistinctValues => {
                let (l, r) = common::probe_rewriters(self, ctx, query)?;
                Ok(match l.1.cmp(&r.1) {
                    Ordering::Greater => Side::Left,
                    Ordering::Less => Side::Right,
                    Ordering::Equal => {
                        if ctx.rng().gen::<bool>() {
                            Side::Left
                        } else {
                            Side::Right
                        }
                    }
                })
            }
        }
    }
}

impl Protocol for SaiProtocol {
    fn name(&self) -> &'static str {
        "SAI"
    }

    fn validate_query(&self, query: &JoinQuery) -> Result<()> {
        if query.query_type() == QueryType::T2 {
            return Err(EngineError::UnsupportedByAlgorithm {
                algorithm: Algorithm::Sai,
                detail: "type-T2 queries require DAI-V (Section 4.5)".to_string(),
            });
        }
        Ok(())
    }

    fn index_attr(&self, ctx: &mut NodeCtx<'_>, query: &JoinQuery, side: Side) -> String {
        common::default_index_attr(ctx, query, side)
    }

    fn on_pose_query(&self, ctx: &mut NodeCtx<'_>, query: &QueryRef) -> Result<()> {
        let side = self.choose_index_side(ctx, query)?;
        common::pose_at_sides(self, ctx, query, &[side])
    }

    fn on_publish_tuple(&self, ctx: &mut NodeCtx<'_>, tuple: &Arc<Tuple>) -> Result<()> {
        common::publish_tuple(ctx, tuple, true);
        Ok(())
    }

    fn on_tuple_arrival(
        &self,
        ctx: &mut NodeCtx<'_>,
        tuple: Arc<Tuple>,
        attr: String,
        index_id: Id,
    ) -> Result<()> {
        common::t1_tuple_arrival(ctx, &tuple, &attr, index_id, false)
    }

    fn on_value_tuple(
        &self,
        ctx: &mut NodeCtx<'_>,
        tuple: Arc<Tuple>,
        attr: String,
        index_id: Id,
    ) -> Result<()> {
        // Match stored rewritten queries against the tuple (4.3.4) ...
        let matches = common::match_vlqt_candidates(ctx, &tuple, &attr)?;
        ctx.push(Effect::Deliver { matches });
        // ... then store it for rewritten queries still to come.
        common::store_value_tuple(
            ctx,
            StoredTuple {
                index_id,
                attr,
                tuple,
            },
        );
        Ok(())
    }

    fn on_rewritten_query(
        &self,
        ctx: &mut NodeCtx<'_>,
        items: Vec<RewrittenQuery>,
        index_id: Id,
    ) -> Result<()> {
        let mut matches = ctx.new_matches();
        for rq in items {
            // Store first (dedup by key); only a *new* rewritten query is
            // evaluated against stored tuples — a duplicate "need only
            // store the information related to tuple t".
            let fresh = ctx.state().vlqt.insert(StoredRewritten {
                index_id,
                rq: rq.clone(),
            });
            let (tick, node) = (ctx.tick(), ctx.node().index() as u32);
            ctx.trace(|| TraceEvent::IndexInsert {
                tick,
                node,
                table: "vlqt",
                fresh,
            });
            if fresh {
                if ctx.repl_k() > 0 {
                    ctx.push(Effect::Replicate {
                        item: ReplicaItem::Rewritten(StoredRewritten {
                            index_id,
                            rq: rq.clone(),
                        }),
                    });
                }
                common::match_against_vltt(ctx, &rq, &mut matches)?;
            }
        }
        ctx.push(Effect::Deliver { matches });
        Ok(())
    }
}
