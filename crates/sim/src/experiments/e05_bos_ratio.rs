//! E5 — Figure "Effect of varying the bos ratio" (Section 5.2.4).
//!
//! The *bos* ratio biases the arrival rates of the two joined relations
//! (0.5 = balanced, 0.9 = R0 gets 9× R1's tuples — see DESIGN.md,
//! "Substitutions"). Expected shape: the rate-based choice beats random at
//! every ratio (queries sit on the cold side, so far fewer triggerings).
//! Absolute traffic falls for *both* strategies as the bias grows, because
//! completed join pairs — and with them notification traffic — scale with
//! rate(R0)·rate(R1), which a skewed split shrinks.

use cq_engine::{Algorithm, IndexStrategy};
use cq_workload::WorkloadConfig;

use super::Scale;
use crate::harness::RunConfig;
use crate::parallel::run_many;
use crate::report::{fnum, Report};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let nodes = scale.pick(128, 1024);
    let queries = scale.pick(60, 5000);
    let tuples = scale.pick(300, 800);
    let warmup = scale.pick(150, 400);
    let ratios = [0.5, 0.6, 0.7, 0.8, 0.9];
    let mut report = Report::new(
        "E5",
        &format!("SAI hops per tuple vs bos ratio (N={nodes}, Q={queries})"),
        &["bos", "random", "lowest-rate", "gap %"],
    );
    let mut cfgs = Vec::new();
    for &bos in &ratios {
        for strategy in [IndexStrategy::Random, IndexStrategy::LowestRate] {
            cfgs.push(RunConfig {
                algorithm: Algorithm::Sai,
                nodes,
                queries,
                tuples,
                warmup_tuples: warmup,
                strategy,
                workload: WorkloadConfig {
                    bos_ratio: bos,
                    domain: scale.pick(40, 400),
                    ..WorkloadConfig::default()
                },
                ..RunConfig::new(Algorithm::Sai)
            });
        }
    }
    let mut results = run_many(&cfgs).into_iter();
    for &bos in &ratios {
        let hops = [
            results
                .next()
                .expect("one result per config")
                .hops_per_tuple(),
            results
                .next()
                .expect("one result per config")
                .hops_per_tuple(),
        ];
        let gap = if hops[0] > 0.0 {
            100.0 * (hops[0] - hops[1]) / hops[0]
        } else {
            0.0
        };
        report.row(vec![
            format!("{bos:.1}"),
            fnum(hops[0]),
            fnum(hops[1]),
            fnum(gap),
        ]);
    }
    report.note("paper: index by the lower-rate attribute; wins at every ratio here");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_based_wins_at_high_bias() {
        let r = run(Scale::Quick);
        let last = r.to_csv().lines().last().unwrap().to_string();
        let cells: Vec<&str> = last.split(',').collect();
        let random: f64 = cells[1].parse().unwrap();
        let lowest: f64 = cells[2].parse().unwrap();
        assert!(
            lowest <= random,
            "at bos=0.9 lowest-rate ({lowest}) must not exceed random ({random})"
        );
    }
}
