//! Nonblocking framed connections: the per-socket buffering layer under the
//! TCP transport's event loop.
//!
//! A [`FrameConn`] owns one nonblocking `TcpStream`, a read-reassembly
//! buffer, and a **segmented write queue**:
//!
//! * **Read side** — bytes are pulled off the socket in bounded chunks
//!   ([`READ_CHUNK`] at a time, never `frame_len` up front) and reassembled
//!   into complete frames. The frame length is validated as soon as the
//!   header arrives — a hostile or corrupt peer announcing a zero or
//!   oversized length is rejected *before* any body byte is read or
//!   buffered, so an attacker cannot make the receiver allocate
//!   `MAX_FRAME`-sized buffers from a 12-byte header. Completed frames are
//!   copied into buffers drawn from a caller-supplied [`BufPool`]; once the
//!   consumer is done decoding it returns the buffer with
//!   [`BufPool::put`], so steady-state frame traffic recycles a fixed set
//!   of buffers instead of allocating per frame. After a genuinely large
//!   frame is consumed the reassembly buffer is shrunk back (see
//!   [`SHRINK_AT`]/[`SHRINK_TO`]), so one big message does not pin its
//!   high-water allocation for the rest of the run.
//! * **Write side** — frames are *encoded in place* at the end of the open
//!   tail segment ([`FrameConn::append_frame_with`] hands the encoder a
//!   `&mut Vec<u8>` positioned after the sequence header), so queueing a
//!   message costs zero intermediate copies. When the tail grows past
//!   [`WRITE_SEG`] it is sealed and a fresh tail started; a sealed segment
//!   is never copied again. [`FrameConn::flush`] writes the whole queue —
//!   the partially-flushed front, every sealed segment, and the tail — with
//!   **one vectored `writev` per syscall**, so the kernel crossing cost is
//!   paid per *flush*, not per frame. A full kernel buffer (`WouldBlock`)
//!   leaves the remainder queued in userspace — this is the transport's
//!   **backpressure** state, counted by [`FrameConn::blocked_writes`] — and
//!   the event loop re-flushes when the poller reports the socket writable
//!   again. Drained segments are retained for reuse, so a steady-state
//!   enqueue/flush cycle allocates nothing.
//!
//! On-stream layout, repeated per frame:
//!
//! ```text
//! +--------------+----------------+------------------------+
//! | seq: u64 LE  | length: u32 LE | length bytes           |
//! | (per-stream  | (of the rest)  | (e.g. a `crate::wire`  |
//! |  frame seq)  |                |  version+payload body) |
//! +--------------+----------------+------------------------+
//! ```
//!
//! The `[length][bytes]` tail is exactly a [`crate::wire`] codec frame, so a
//! reassembled frame feeds `wire::decode_message` verbatim. The leading
//! sequence number is *transport* state: the sender numbers frames per
//! logical stream, and the receiver checks contiguity, so frames lost to a
//! reconnect (or replayed by a confused peer) are detected as a typed
//! protocol error instead of silently decoding the wrong message. The
//! sequencing policy lives in the transport; `FrameConn` carries the number.
//!
//! Every syscall and frame through a connection is tallied in
//! [`ConnCounters`] (reads, writes, bytes each way, frames each way,
//! blocked flushes), which the transport aggregates into its
//! [`SocketStats`](crate::transport_tcp::SocketStats) — the observable
//! basis for the bytes-per-syscall and frames-per-flush guarantees.
//!
//! This type is deliberately protocol-agnostic (lengths and sequence
//! numbers, never message contents), which is why the multi-client cluster
//! harness in `cq-sim` reuses it for its command streams.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::TcpStream;

/// Bytes pulled off the socket per `read` call — the reassembly buffer
/// grows by at most this much at a time, regardless of the announced
/// frame length.
pub const READ_CHUNK: usize = 64 * 1024;

/// Frames at least this large mark the read buffer for shrinking once
/// consumed; pooled buffers above this capacity are shrunk on return.
pub const SHRINK_AT: usize = 256 * 1024;

/// Capacity the buffers shrink back to after servicing a large frame.
pub const SHRINK_TO: usize = 64 * 1024;

/// Per-frame header bytes: an 8-byte sequence number plus the 4-byte frame
/// length.
pub const FRAME_HEADER: usize = 12;

/// The open write-tail segment is sealed once it reaches this size, so one
/// `writev` can cover many coalesced frames without unbounded single-buffer
/// growth. A frame is never split across segments: one oversized frame
/// simply makes one oversized segment.
pub const WRITE_SEG: usize = 32 * 1024;

/// Most queued regions one `writev` call covers (front + sealed segments +
/// tail). Longer queues flush in several vectored calls.
const MAX_IOVECS: usize = 64;

/// Most recycled buffers a [`BufPool`] retains; returns beyond this are
/// dropped so an inbox burst cannot pin its high-water buffer count.
const POOL_MAX: usize = 64;

/// One complete frame off the wire: the stream sequence number and the
/// `[length][bytes]` payload (length prefix included, ready for
/// [`crate::wire::decode_message`]). The buffer is drawn from the
/// [`BufPool`] given to [`FrameConn::read_frames`]; return it with
/// [`BufPool::put`] once decoded to keep the steady state allocation-free.
pub type RawFrame = (u64, Vec<u8>);

/// A recycling pool of frame buffers shared across connections.
///
/// [`FrameConn::read_frames`] draws the buffer for each completed frame
/// from here instead of allocating, and the consumer returns it after
/// decoding. Oversized buffers are shrunk to [`SHRINK_TO`] on return (the
/// same discipline as the reassembly buffer), and at most `POOL_MAX`
/// buffers are retained.
#[derive(Debug, Default)]
pub struct BufPool {
    bufs: Vec<Vec<u8>>,
    hits: u64,
    misses: u64,
}

impl BufPool {
    /// An empty pool.
    pub fn new() -> BufPool {
        BufPool::default()
    }

    /// A cleared buffer: recycled when one is available (a pool *hit*),
    /// freshly allocated otherwise (a *miss*).
    pub fn get(&mut self) -> Vec<u8> {
        match self.bufs.pop() {
            Some(mut buf) => {
                buf.clear();
                self.hits += 1;
                buf
            }
            None => {
                self.misses += 1;
                Vec::new()
            }
        }
    }

    /// Returns a buffer for reuse. Buffers above [`SHRINK_AT`] capacity are
    /// shrunk back to [`SHRINK_TO`] first, and returns beyond the retention
    /// cap are dropped.
    pub fn put(&mut self, mut buf: Vec<u8>) {
        if self.bufs.len() >= POOL_MAX {
            return;
        }
        if buf.capacity() > SHRINK_AT {
            buf.clear();
            buf.shrink_to(SHRINK_TO);
        }
        self.bufs.push(buf);
    }

    /// Buffers currently retained for reuse.
    pub fn buffered(&self) -> usize {
        self.bufs.len()
    }

    /// `(hits, misses)` since the last take, reset to zero.
    pub fn take_counters(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.hits),
            std::mem::take(&mut self.misses),
        )
    }

    /// `(hits, misses)` without resetting.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Per-connection I/O tallies: every syscall the connection issued and
/// every frame it moved. `write_syscalls`/`read_syscalls` count *attempts*
/// (a `WouldBlock` probe crossed the kernel boundary too), so
/// bytes-per-syscall derived from these is honest about the real kernel
/// crossing cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConnCounters {
    /// `writev` calls issued (including ones that returned `WouldBlock`).
    pub write_syscalls: u64,
    /// `read` calls issued (including `WouldBlock` probes and the EOF read).
    pub read_syscalls: u64,
    /// Bytes the kernel accepted across all writes.
    pub bytes_written: u64,
    /// Bytes read off the socket.
    pub bytes_read: u64,
    /// Frames queued for sending (`append_frame_with`/`queue_frame`).
    pub frames_out: u64,
    /// Complete frames reassembled off the wire.
    pub frames_in: u64,
    /// Times a flush hit a full kernel buffer and parked bytes in
    /// userspace (entered backpressure).
    pub blocked_writes: u64,
}

impl ConnCounters {
    /// Folds another connection's tallies into this one.
    pub fn merge(&mut self, other: &ConnCounters) {
        self.write_syscalls += other.write_syscalls;
        self.read_syscalls += other.read_syscalls;
        self.bytes_written += other.bytes_written;
        self.bytes_read += other.bytes_read;
        self.frames_out += other.frames_out;
        self.frames_in += other.frames_in;
        self.blocked_writes += other.blocked_writes;
    }
}

/// A nonblocking socket with framed read/write buffers. See the module
/// docs for the layout, the copy discipline and the backpressure model.
#[derive(Debug)]
pub struct FrameConn {
    stream: TcpStream,
    /// Unparsed received bytes; `rpos` is the parse cursor.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Sealed (immutable) outgoing segments, oldest first.
    wsegs: VecDeque<Vec<u8>>,
    /// The open tail segment frames are encoded into.
    wtail: Vec<u8>,
    /// Flushed bytes of the *front* region (`wsegs.front()`, or `wtail`
    /// when no sealed segment remains).
    wpos: usize,
    /// Queued-but-unflushed byte total across all regions.
    wqueued: usize,
    /// One drained segment kept for the next seal (steady-state seals
    /// allocate nothing).
    wspare: Option<Vec<u8>>,
    /// Largest frame length this connection accepts.
    max_frame: u32,
    /// The peer closed its write half (a clean EOF was observed).
    eof: bool,
    /// A frame ≥ [`SHRINK_AT`] was consumed; shrink at the next compaction.
    shrink_pending: bool,
    /// I/O tallies (see [`ConnCounters`]).
    counters: ConnCounters,
}

impl FrameConn {
    /// Wraps `stream`, switching it to nonblocking mode. `max_frame` bounds
    /// the frame length accepted from the peer (use
    /// [`crate::wire::MAX_FRAME`] for protocol streams).
    pub fn new(stream: TcpStream, max_frame: u32) -> io::Result<FrameConn> {
        stream.set_nonblocking(true)?;
        Ok(FrameConn {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wsegs: VecDeque::new(),
            wtail: Vec::new(),
            wpos: 0,
            wqueued: 0,
            wspare: None,
            max_frame,
            eof: false,
            shrink_pending: false,
            counters: ConnCounters::default(),
        })
    }

    /// The underlying socket (for addresses and socket options).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Seals the tail into the segment queue once it has reached
    /// [`WRITE_SEG`], starting a fresh (recycled when possible) tail.
    fn maybe_seal(&mut self) {
        if self.wtail.len() < WRITE_SEG {
            return;
        }
        // `wpos` tracks the front region: if the tail *was* the front
        // (no sealed segments), it still is after sealing, so the cursor
        // carries over unchanged.
        let seg = std::mem::replace(&mut self.wtail, self.wspare.take().unwrap_or_default());
        self.wsegs.push_back(seg);
    }

    /// Queues raw bytes ahead of any frames — connection preambles (the
    /// transport's hello) use this. Call [`FrameConn::flush`] to send.
    pub fn queue_bytes(&mut self, bytes: &[u8]) {
        self.maybe_seal();
        self.wtail.extend_from_slice(bytes);
        self.wqueued += bytes.len();
    }

    /// Encodes one frame *in place* at the end of the write queue: the
    /// 8-byte sequence header is written, then `encode` appends the codec
    /// frame (`[len u32 LE][bytes]`) directly into the queue's tail buffer
    /// — no intermediate copy exists anywhere. Returns the total bytes
    /// queued for this frame (sequence header included).
    pub fn append_frame_with(&mut self, seq: u64, encode: impl FnOnce(&mut Vec<u8>)) -> usize {
        self.maybe_seal();
        let start = self.wtail.len();
        self.wtail.extend_from_slice(&seq.to_le_bytes());
        encode(&mut self.wtail);
        let appended = self.wtail.len() - start;
        debug_assert!(
            appended >= FRAME_HEADER,
            "encoder must append at least a length prefix"
        );
        debug_assert_eq!(
            crate::wire::frame_body_len(&self.wtail[start + 8..]),
            Some(appended - FRAME_HEADER),
            "frame length prefix counts the remaining bytes"
        );
        self.wqueued += appended;
        self.counters.frames_out += 1;
        appended
    }

    /// Queues one pre-encoded frame (copying it into the write queue).
    /// `frame` must start with its own u32 LE length prefix counting the
    /// remaining bytes (the [`crate::wire`] encoders produce exactly this
    /// shape). Protocol senders encode in place with
    /// [`FrameConn::append_frame_with`] instead.
    pub fn queue_frame(&mut self, seq: u64, frame: &[u8]) {
        self.append_frame_with(seq, |buf| buf.extend_from_slice(frame));
    }

    /// Whether queued bytes are waiting for the socket to become writable.
    pub fn wants_write(&self) -> bool {
        self.wqueued > 0
    }

    /// Bytes queued but not yet accepted by the kernel.
    pub fn queued_write_bytes(&self) -> usize {
        self.wqueued
    }

    /// Times a flush hit a full kernel buffer and left bytes queued — the
    /// number of times this connection entered backpressure.
    pub fn blocked_writes(&self) -> u64 {
        self.counters.blocked_writes
    }

    /// The connection's I/O tallies so far.
    pub fn counters(&self) -> &ConnCounters {
        &self.counters
    }

    /// Drains the I/O tallies, resetting them to zero (the transport folds
    /// these into its aggregate stats).
    pub fn take_counters(&mut self) -> ConnCounters {
        std::mem::take(&mut self.counters)
    }

    /// Whether the peer has closed its write half.
    pub fn is_eof(&self) -> bool {
        self.eof
    }

    /// Current capacity of the read-reassembly buffer (observable effect of
    /// the post-large-frame shrink).
    pub fn read_buffer_capacity(&self) -> usize {
        self.rbuf.capacity()
    }

    /// Sealed segments currently queued (the tail is one more region; a
    /// flush covers all of them with vectored writes).
    pub fn queued_segments(&self) -> usize {
        self.wsegs.len()
    }

    /// Advances the flush cursor by `n` accepted bytes, recycling sealed
    /// segments as they drain.
    fn consume_written(&mut self, mut n: usize) {
        self.wqueued -= n;
        while n > 0 {
            match self.wsegs.front() {
                Some(front) => {
                    let avail = front.len() - self.wpos;
                    if n < avail {
                        self.wpos += n;
                        return;
                    }
                    n -= avail;
                    self.wpos = 0;
                    // Invariant: front() was Some on the line above.
                    let mut seg = self.wsegs.pop_front().expect("non-empty segment queue");
                    if self.wspare.is_none() && seg.capacity() <= SHRINK_AT {
                        seg.clear();
                        self.wspare = Some(seg);
                    }
                }
                None => {
                    self.wpos += n;
                    debug_assert!(self.wpos <= self.wtail.len());
                    return;
                }
            }
        }
    }

    /// Writes as much queued data as the kernel accepts, covering every
    /// queued region — the partially-flushed front, the sealed segments and
    /// the open tail — with one vectored `writev` per syscall. Returns
    /// `true` when the queue drained, `false` when the socket would block
    /// and the remainder stays queued (re-flush on the next writable
    /// event).
    pub fn flush(&mut self) -> io::Result<bool> {
        while self.wqueued > 0 {
            let mut iovs: [IoSlice; MAX_IOVECS] = [IoSlice::new(&[]); MAX_IOVECS];
            let mut n = 0;
            for (i, seg) in self.wsegs.iter().enumerate() {
                if n == MAX_IOVECS {
                    break;
                }
                let from = if i == 0 { self.wpos } else { 0 };
                iovs[n] = IoSlice::new(&seg[from..]);
                n += 1;
            }
            if n < MAX_IOVECS {
                let from = if self.wsegs.is_empty() { self.wpos } else { 0 };
                if from < self.wtail.len() {
                    iovs[n] = IoSlice::new(&self.wtail[from..]);
                    n += 1;
                }
            }
            self.counters.write_syscalls += 1;
            match (&self.stream).write_vectored(&iovs[..n]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(written) => {
                    self.counters.bytes_written += written as u64;
                    self.consume_written(written);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.counters.blocked_writes += 1;
                    return Ok(false);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        // Fully drained: reset the tail in place, releasing a large
        // frame's high-water allocation.
        debug_assert!(self.wsegs.is_empty());
        let oversized = self.wtail.capacity() > SHRINK_AT;
        self.wtail.clear();
        self.wpos = 0;
        if oversized {
            self.wtail.shrink_to(SHRINK_TO);
        }
        Ok(true)
    }

    /// Reads everything currently available (in [`READ_CHUNK`]-bounded
    /// chunks) and appends every completed frame to `out`, with frame
    /// buffers drawn from `pool` (return them with [`BufPool::put`] after
    /// decoding). Returns `true` while the connection is open, `false` on a
    /// clean EOF at a frame boundary. Errors on malformed lengths —
    /// rejected as soon as the header is visible — and on an EOF that
    /// truncates a frame.
    pub fn read_frames(&mut self, out: &mut Vec<RawFrame>, pool: &mut BufPool) -> io::Result<bool> {
        if self.eof {
            return Ok(false);
        }
        loop {
            let start = self.rbuf.len();
            self.rbuf.resize(start + READ_CHUNK, 0);
            let res = self.stream.read(&mut self.rbuf[start..]);
            self.counters.read_syscalls += 1;
            match res {
                Ok(0) => {
                    self.rbuf.truncate(start);
                    self.parse_available(out, pool)?;
                    self.eof = true;
                    let pending = self.rbuf.len() - self.rpos;
                    if pending > 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            format!("connection closed mid-frame ({pending} bytes of an unfinished frame buffered)"),
                        ));
                    }
                    self.compact();
                    return Ok(false);
                }
                Ok(n) => {
                    self.counters.bytes_read += n as u64;
                    self.rbuf.truncate(start + n);
                    self.parse_available(out, pool)?;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.rbuf.truncate(start);
                    self.compact();
                    return Ok(true);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    self.rbuf.truncate(start);
                }
                Err(e) => {
                    self.rbuf.truncate(start);
                    return Err(e);
                }
            }
        }
    }

    /// Extracts every complete frame sitting in the reassembly buffer.
    fn parse_available(&mut self, out: &mut Vec<RawFrame>, pool: &mut BufPool) -> io::Result<()> {
        loop {
            let avail = self.rbuf.len() - self.rpos;
            if avail < FRAME_HEADER {
                return Ok(());
            }
            let at = self.rpos;
            let seq = u64::from_le_bytes(self.rbuf[at..at + 8].try_into().expect("8 bytes"));
            let len = u32::from_le_bytes(self.rbuf[at + 8..at + 12].try_into().expect("4 bytes"));
            // Early abort: the length is judged the moment the header is
            // complete, before any body byte is read for this frame.
            if len == 0 || len > self.max_frame {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("frame length {len} outside (0, {}]", self.max_frame),
                ));
            }
            let total = FRAME_HEADER + len as usize;
            if avail < total {
                return Ok(()); // body still arriving, chunk by chunk
            }
            // The emitted frame keeps its length prefix: `[len][bytes]` is
            // exactly what `wire::decode_message` consumes. The buffer is
            // recycled, not allocated, once the pool is warm.
            let mut frame = pool.get();
            frame.extend_from_slice(&self.rbuf[at + 8..at + total]);
            out.push((seq, frame));
            self.counters.frames_in += 1;
            self.rpos += total;
            if len as usize >= SHRINK_AT {
                self.shrink_pending = true;
            }
        }
    }

    /// Drops consumed bytes and releases a large frame's high-water
    /// allocation once the buffer is back to ordinary size.
    fn compact(&mut self) {
        if self.rpos == self.rbuf.len() {
            self.rbuf.clear();
        } else {
            self.rbuf.drain(..self.rpos);
        }
        self.rpos = 0;
        if self.shrink_pending && self.rbuf.len() <= SHRINK_TO {
            self.rbuf.shrink_to(SHRINK_TO);
            self.shrink_pending = false;
        }
    }
}
