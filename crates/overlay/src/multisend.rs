//! The paper's API extension (Section 2.3): `multisend(msg, L)` delivers one
//! message to the successors of a whole list of identifiers, either
//! iteratively (k independent lookups from the sender) or recursively (the
//! message snakes clockwise through the responsible nodes, each stripping the
//! identifiers it owns).
//!
//! Both variants cost `O(k log N)` hops, but the recursive one performs
//! significantly better in practice — reproduced by experiment E1.

use crate::error::Result;
use crate::id::Id;
use crate::node::NodeHandle;
use crate::ring::Ring;

/// The outcome of a multisend: which node received which identifiers, plus
/// the traffic consumed.
#[derive(Clone, Debug)]
pub struct MultisendOutcome {
    /// `(recipient, identifiers the recipient is responsible for)` in
    /// delivery order.
    pub deliveries: Vec<(NodeHandle, Vec<Id>)>,
    /// Total overlay hops consumed by all messages.
    pub total_hops: usize,
    /// Completion time in hops: for the recursive variant the chain is
    /// sequential so this equals `total_hops`; for the iterative variant the
    /// k lookups proceed in parallel so it is the longest single lookup.
    pub makespan: usize,
}

impl Ring {
    /// Recursive `multisend(msg, L)` exactly as in Section 2.3:
    /// sort `L` ascending clockwise from the sender, route toward the head,
    /// let each responsible node strip the identifiers it owns and forward
    /// the remainder.
    pub fn multisend_recursive(&self, from: NodeHandle, ids: &[Id]) -> Result<MultisendOutcome> {
        let mut outcome = MultisendOutcome {
            deliveries: Vec::new(),
            total_hops: 0,
            makespan: 0,
        };
        if ids.is_empty() {
            return Ok(outcome);
        }
        // "Initially n sorts the identifiers in L in ascending order clockwise
        // starting from id(n)."
        let origin = self.id_of(from);
        let mut remaining: Vec<Id> = ids.to_vec();
        remaining.sort_by_key(|&i| self.space().distance(origin, i));
        remaining.dedup();

        let mut cur = from;
        let mut pos = 0usize;
        while pos < remaining.len() {
            let head = remaining[pos];
            let (owner, hops) = self.route_owner(cur, head)?;
            outcome.total_hops += hops;
            let owner_id = self.id_of(owner);
            // "x deletes all elements of L that are smaller or equal to id(x),
            // starting from head(L), since node x is responsible for them."
            let mut owned = Vec::new();
            while pos < remaining.len() {
                let id = remaining[pos];
                let in_range = id == head || self.space().in_open_closed(id, head, owner_id);
                if in_range
                    && self.space().distance(head, id) <= self.space().distance(head, owner_id)
                {
                    owned.push(id);
                    pos += 1;
                } else {
                    break;
                }
            }
            debug_assert!(!owned.is_empty(), "owner must own at least the head");
            outcome.deliveries.push((owner, owned));
            cur = owner;
        }
        outcome.makespan = outcome.total_hops;
        Ok(outcome)
    }

    /// Iterative multisend: "create k different send() messages … and locate
    /// the recipients in an iterative fashion". Implemented for comparison
    /// purposes, as in the paper.
    pub fn multisend_iterative(&self, from: NodeHandle, ids: &[Id]) -> Result<MultisendOutcome> {
        let mut outcome = MultisendOutcome {
            deliveries: Vec::new(),
            total_hops: 0,
            makespan: 0,
        };
        let mut seen: Vec<(NodeHandle, Vec<Id>)> = Vec::new();
        let mut sorted: Vec<Id> = ids.to_vec();
        sorted.sort_by_key(|&i| self.space().distance(self.id_of(from), i));
        sorted.dedup();
        for id in sorted {
            let (owner, hops) = self.route_owner(from, id)?;
            outcome.total_hops += hops;
            outcome.makespan = outcome.makespan.max(hops);
            match seen.iter_mut().find(|(h, _)| *h == owner) {
                Some((_, v)) => v.push(id),
                None => seen.push((owner, vec![id])),
            }
        }
        outcome.deliveries = seen;
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::IdSpace;

    fn ring(n: usize) -> Ring {
        Ring::build(IdSpace::new(20), n, "ms-node-")
    }

    fn targets(ring: &Ring, k: usize) -> Vec<Id> {
        (0..k as u64)
            .map(|i| Id(i.wrapping_mul(2_654_435_761) % ring.space().size()))
            .collect()
    }

    #[test]
    fn recursive_reaches_every_true_owner() {
        let r = ring(100);
        let from = r.alive_nodes().nth(3).unwrap();
        let ids = targets(&r, 25);
        let out = r.multisend_recursive(from, &ids).unwrap();
        let mut delivered: Vec<Id> = out.deliveries.iter().flat_map(|(_, v)| v.clone()).collect();
        delivered.sort();
        let mut expect = ids.clone();
        expect.sort();
        expect.dedup();
        assert_eq!(delivered, expect);
        for (owner, owned) in &out.deliveries {
            for id in owned {
                assert_eq!(
                    r.owner_of(*id).unwrap(),
                    *owner,
                    "id {id} delivered to wrong node"
                );
            }
        }
    }

    #[test]
    fn iterative_reaches_every_true_owner() {
        let r = ring(100);
        let from = r.alive_nodes().nth(3).unwrap();
        let ids = targets(&r, 25);
        let out = r.multisend_iterative(from, &ids).unwrap();
        let mut delivered: Vec<Id> = out.deliveries.iter().flat_map(|(_, v)| v.clone()).collect();
        delivered.sort();
        let mut expect = ids;
        expect.sort();
        expect.dedup();
        assert_eq!(delivered, expect);
    }

    #[test]
    fn both_variants_deliver_identical_sets() {
        let r = ring(64);
        let from = r.alive_nodes().next().unwrap();
        let ids = targets(&r, 40);
        let rec = r.multisend_recursive(from, &ids).unwrap();
        let ite = r.multisend_iterative(from, &ids).unwrap();
        let norm = |out: &MultisendOutcome| {
            // Merge per owner: the recursive walk may visit the sender's
            // successor twice when the identifier list wraps around the
            // sender (two delivery entries for one node), which is correct
            // protocol behavior — only the per-owner id sets must agree.
            let mut merged: std::collections::BTreeMap<NodeHandle, Vec<Id>> = Default::default();
            for (h, ids) in &out.deliveries {
                merged.entry(*h).or_default().extend(ids.iter().copied());
            }
            merged
                .into_iter()
                .map(|(h, mut ids)| {
                    ids.sort();
                    (h, ids)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(norm(&rec), norm(&ite));
    }

    #[test]
    fn recursive_uses_fewer_total_hops_for_many_targets() {
        // The paper's practical advantage: once the message is in the right
        // region of the ring, consecutive recipients are a hop or two apart.
        let r = ring(256);
        let from = r.alive_nodes().next().unwrap();
        let ids = targets(&r, 128);
        let rec = r.multisend_recursive(from, &ids).unwrap();
        let ite = r.multisend_iterative(from, &ids).unwrap();
        assert!(
            rec.total_hops < ite.total_hops,
            "recursive {} !< iterative {}",
            rec.total_hops,
            ite.total_hops
        );
    }

    #[test]
    fn empty_list_is_a_noop() {
        let r = ring(10);
        let from = r.alive_nodes().next().unwrap();
        let out = r.multisend_recursive(from, &[]).unwrap();
        assert!(out.deliveries.is_empty());
        assert_eq!(out.total_hops, 0);
    }

    #[test]
    fn duplicate_identifiers_are_delivered_once() {
        let r = ring(30);
        let from = r.alive_nodes().next().unwrap();
        let id = Id(12345);
        let out = r.multisend_recursive(from, &[id, id, id]).unwrap();
        assert_eq!(out.deliveries.len(), 1);
        assert_eq!(out.deliveries[0].1, vec![id]);
    }

    #[test]
    fn sender_owned_identifier_costs_nothing_extra() {
        let r = ring(30);
        let from = r.alive_nodes().nth(5).unwrap();
        let own_id = r.id_of(from);
        let out = r.multisend_recursive(from, &[own_id]).unwrap();
        assert_eq!(out.deliveries, vec![(from, vec![own_id])]);
        assert_eq!(out.total_hops, 0);
    }
}
