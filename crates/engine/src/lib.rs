//! # cq-engine — continuous two-way equi-join evaluation over a DHT
//!
//! The paper's primary contribution (Chapter 4): four distributed algorithms
//! that evaluate continuous two-way equi-join SQL queries on top of a Chord
//! overlay, built on a **two-level indexing** scheme:
//!
//! 1. **Attribute level** — queries and tuples are indexed under
//!    `Hash(relation + attribute)`. The nodes receiving queries become
//!    *rewriters*.
//! 2. **Value level** — as tuples arrive, rewriters substitute their values
//!    into the join condition, *rewriting* each triggered join query into a
//!    simple select-project query, and reindex it under
//!    `Hash(relation + attribute + value)` (or `Hash(value)` for DAI-V).
//!    The nodes receiving rewritten queries become *evaluators* and create
//!    notifications.
//!
//! The four algorithms differ in who stores what and when notifications are
//! created:
//!
//! | | rewriters | evaluators store | notify on |
//! |---|---|---|---|
//! | SAI   | one per query  | rewritten queries + tuples | both arrivals |
//! | DAI-Q | two per query  | tuples                     | rewritten-query arrival |
//! | DAI-T | two per query  | rewritten queries          | tuple arrival |
//! | DAI-V | two per query  | tuples (by condition value)| rewritten-query arrival |
//!
//! ```
//! use cq_engine::{Algorithm, EngineConfig, Network};
//! use cq_relational::{Catalog, DataType, RelationSchema, Value};
//!
//! let mut catalog = Catalog::new();
//! catalog.register(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap()).unwrap();
//! catalog.register(RelationSchema::of("S", &[("C", DataType::Int), ("D", DataType::Int)]).unwrap()).unwrap();
//!
//! let mut net = Network::new(EngineConfig::new(Algorithm::DaiT).with_nodes(32), catalog);
//! let poser = net.node_at(0);
//! net.pose_query_sql(poser, "SELECT R.A, S.D FROM R, S WHERE R.B = S.C").unwrap();
//! net.insert_tuple(net.node_at(1), "R", vec![Value::Int(1), Value::Int(7)]).unwrap();
//! net.insert_tuple(net.node_at(2), "S", vec![Value::Int(7), Value::Int(9)]).unwrap();
//! assert_eq!(net.inbox(poser).len(), 1); // R(1,7) ⋈ S(7,9)
//! ```

#![warn(missing_docs)]

pub mod algo;
mod churn;
pub mod config;
pub mod error;
pub mod faults;
pub mod frames;
pub mod indexing;
pub mod jfrt;
pub mod messages;
pub mod metrics;
pub mod network;
pub mod node;
pub mod oracle;
pub mod pipeline;
pub mod protocol;
pub mod recovery;
pub mod replication;
pub mod tables;
pub mod trace;
mod transport;
mod transport_tcp;
pub mod wire;

pub use algo::protocol_for;
pub use config::{Algorithm, EngineConfig, IndexStrategy};
pub use error::{EngineError, Result};
pub use faults::{ChurnModel, DedupWindow, FaultConfig, SessionDist};
pub use jfrt::{Jfrt, JfrtLookup};
pub use messages::{Message, ValueJoin};
pub use metrics::{FaultCounters, Metrics, NodeLoad, RecoveryCounters, TrafficKind};
pub use network::Network;
pub use node::NodeState;
pub use oracle::Oracle;
pub use pipeline::Pipeline;
pub use protocol::{Effect, Matches, NodeCtx, Protocol};
pub use recovery::SuspicionConfig;
pub use replication::{PromotedState, ReplicaItem, ReplicaStore};
pub use transport_tcp::{SocketStats, TcpOptions};

pub use trace::{
    BinarySummarySink, JsonlSink, JsonlSummarySink, NoopSink, RingBufferSink, SummarySink, TeeSink,
    TraceEvent, TraceSink, TraceSummary,
};
