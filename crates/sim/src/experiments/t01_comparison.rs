//! T1 — Table 4.1 "A comparison of all algorithms", regenerated from
//! measurements instead of prose.
//!
//! For each algorithm, one identical workload produces: messages per query
//! indexing, reindex messages per streamed tuple, what evaluators store
//! (rewritten queries vs tuples), and the notification count — the exact
//! contrasts the paper's table draws qualitatively.

use cq_engine::{Algorithm, TrafficKind};
use cq_workload::WorkloadConfig;

use super::Scale;
use crate::harness::RunConfig;
use crate::parallel::run_many;
use crate::report::{fnum, Report};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let nodes = scale.pick(128, 1024);
    let queries = scale.pick(60, 5000);
    let tuples = scale.pick(300, 800);
    let mut report = Report::new(
        "T1",
        &format!("Table 4.1: per-operation comparison (N={nodes}, Q={queries}, T={tuples})"),
        &[
            "algorithm",
            "index msgs/query",
            "tuple-index msgs/tuple",
            "reindex msgs/tuple",
            "stored rewritten",
            "stored tuples",
            "notifications",
        ],
    );
    let cfgs: Vec<RunConfig> = Algorithm::ALL
        .into_iter()
        .map(|alg| RunConfig {
            algorithm: alg,
            nodes,
            queries,
            tuples,
            measure_stream_only: false,
            workload: WorkloadConfig {
                domain: scale.pick(40, 400),
                ..WorkloadConfig::default()
            },
            ..RunConfig::new(alg)
        })
        .collect();
    for (alg, r) in Algorithm::ALL.into_iter().zip(run_many(&cfgs)) {
        let qi = r.traffic_of(TrafficKind::QueryIndex).messages as f64 / queries as f64;
        let ti = r.traffic_of(TrafficKind::TupleIndex).messages as f64 / tuples as f64;
        let ri = r.traffic_of(TrafficKind::Reindex).messages as f64 / tuples as f64;
        report.row(vec![
            alg.name().to_string(),
            fnum(qi),
            fnum(ti),
            fnum(ri),
            r.stored_rewritten.to_string(),
            r.stored_tuples.to_string(),
            r.notifications.to_string(),
        ]);
    }
    report.note("SAI: 1 rewriter/query, evaluators store both kinds");
    report.note("DAI-Q: 2 rewriters/query, evaluators store tuples only");
    report.note("DAI-T: 2 rewriters/query, evaluators store rewritten queries only; reindex once per distinct rewriting");
    report.note("DAI-V: 2 rewriters/query, h (not 2h) tuple-index msgs, evaluators keyed by condition value");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dai_indexes_queries_twice() {
        let r = run(Scale::Quick);
        let mut per_alg = std::collections::HashMap::new();
        for line in r.to_csv().lines().skip(1) {
            let c: Vec<&str> = line.split(',').collect();
            per_alg.insert(c[0].to_string(), c[1].parse::<f64>().unwrap());
        }
        assert!(
            (per_alg["SAI"] - 1.0).abs() < 1e-9,
            "SAI: one rewriter per query"
        );
        for alg in ["DAI-Q", "DAI-T", "DAI-V"] {
            assert!(
                (per_alg[alg] - 2.0).abs() < 1e-9,
                "{alg}: two rewriters per query"
            );
        }
    }

    #[test]
    fn dai_v_sends_half_the_tuple_index_messages() {
        let r = run(Scale::Quick);
        let mut per_alg = std::collections::HashMap::new();
        for line in r.to_csv().lines().skip(1) {
            let c: Vec<&str> = line.split(',').collect();
            per_alg.insert(c[0].to_string(), c[2].parse::<f64>().unwrap());
        }
        // T1 algorithms index each tuple at 2h identifiers, DAI-V at h.
        assert!(
            (per_alg["SAI"] / per_alg["DAI-V"] - 2.0).abs() < 0.01,
            "SAI {} vs DAI-V {}",
            per_alg["SAI"],
            per_alg["DAI-V"]
        );
    }
}
