//! Handler building blocks shared by the four protocol implementations.
//!
//! Everything here is a pure function of a [`NodeCtx`]: state reads/writes
//! go through `ctx.state()`, randomness through `ctx.rng()`, and sends are
//! pushed as [`Effect`]s. The helpers reproduce the paper's shared
//! machinery — query indexing (Section 4.3.1), the two-level tuple indexing
//! of Section 4.2, rewriting T1 queries on tuple arrival (Sections
//! 4.3.2/4.4) and matching rewritten queries against stored tuples
//! (Section 4.3.3) — while the per-algorithm differences stay in the
//! [`Protocol`] impls.

use std::sync::Arc;

use cq_overlay::Id;
use cq_relational::{JoinQuery, MatchTarget, QueryRef, RewrittenQuery, Side, Tuple};
use rand::Rng;

use crate::error::Result;
use crate::indexing;
use crate::messages::Message;
use crate::metrics::TrafficKind;
use crate::protocol::{Effect, Matches, NodeCtx, Protocol};
use crate::tables::{StoredQuery, StoredTuple};
use crate::trace::TraceEvent;

/// Indexes `[T; 2]` probe results by side.
pub(crate) fn side_slot(side: Side) -> usize {
    match side {
        Side::Left => 0,
        Side::Right => 1,
    }
}

/// `IndexA(q)` for `side`: the join attribute for T1 queries, a
/// pseudo-random attribute of the side's condition for T2 (Section 4.5).
pub(crate) fn default_index_attr(ctx: &mut NodeCtx<'_>, query: &JoinQuery, side: Side) -> String {
    if let Some(attr) = query.join_attr(side) {
        return attr.to_string();
    }
    // T2: no single join attribute; pick pseudo-randomly among the side's
    // condition attributes (validated non-empty at construction).
    let attrs: Vec<&str> = query.condition(side).attributes().into_iter().collect();
    let i = ctx.rng().gen_range(0..attrs.len());
    attrs[i].to_string()
}

/// Emits the attribute-level `IndexQuery` batch for `sides`, one message
/// per configured replica identifier (Section 4.7).
pub(crate) fn pose_at_sides(
    proto: &dyn Protocol,
    ctx: &mut NodeCtx<'_>,
    query: &QueryRef,
    sides: &[Side],
) -> Result<()> {
    let space = ctx.space();
    let k = ctx.config().replication;
    let mut targets: Vec<(Id, Message)> = Vec::new();
    for &side in sides {
        let attr = proto.index_attr(ctx, query, side);
        for id in indexing::aindex_replicas(space, query.relation(side), &attr, k) {
            targets.push((
                id,
                Message::IndexQuery {
                    query: Arc::clone(query),
                    index_side: side,
                    index_attr: attr.clone(),
                    index_id: id,
                },
            ));
        }
    }
    ctx.push(Effect::Batch {
        kind: TrafficKind::QueryIndex,
        targets,
    });
    Ok(())
}

/// Emits the tuple-indexing batch: one attribute-level message per
/// attribute, plus a value-level message when the algorithm stores tuples
/// at the value level (Section 4.2).
pub(crate) fn publish_tuple(ctx: &mut NodeCtx<'_>, tuple: &Arc<Tuple>, value_level: bool) {
    let space = ctx.space();
    let ids = indexing::tuple_index_ids(space, tuple, value_level, ctx.config().replication);
    let mut targets: Vec<(Id, Message)> = Vec::with_capacity(ids.len() * 2);
    for (attr, ai, vi) in ids {
        targets.push((
            ai,
            Message::AlIndexTuple {
                tuple: Arc::clone(tuple),
                attr: attr.clone(),
                index_id: ai,
            },
        ));
        if let Some(vi) = vi {
            targets.push((
                vi,
                Message::VlIndexTuple {
                    tuple: Arc::clone(tuple),
                    attr,
                    index_id: vi,
                },
            ));
        }
    }
    ctx.push(Effect::Batch {
        kind: TrafficKind::TupleIndex,
        targets,
    });
}

/// Probes both candidate rewriters of `query` for their arrival statistics
/// (Section 4.3.6), returning `(left, right)` `(count, distinct)` pairs.
pub(crate) fn probe_rewriters(
    proto: &dyn Protocol,
    ctx: &mut NodeCtx<'_>,
    query: &JoinQuery,
) -> Result<((u64, usize), (u64, usize))> {
    let space = ctx.space();
    let k = ctx.config().replication;
    let mut out = [(0u64, 0usize); 2];
    for side in Side::BOTH {
        let rel = query.relation(side);
        let attr = proto.index_attr(ctx, query, side);
        // Probe the base identifier (replica 0) — the canonical rewriter.
        let id = indexing::aindex_replica(space, rel, &attr, 0, k);
        out[side_slot(side)] = ctx.probe_arrival_stats(rel, &attr, id)?;
    }
    Ok((out[0], out[1]))
}

/// Rewriter prelude on tuple arrival: records arrival statistics, snapshots
/// the query groups scoped to the addressed replica identifier, and
/// accounts the rewriter's filtering work. Returns the triggered groups
/// (empty when nothing is stored under `(relation, attr)` for this
/// replica).
pub(crate) fn triggered_groups(
    ctx: &mut NodeCtx<'_>,
    tuple: &Tuple,
    attr: &str,
    index_id: Id,
) -> Result<Vec<(String, Vec<StoredQuery>)>> {
    let rel = tuple.relation();
    let value_key = tuple.canonical_of(attr)?;
    let node = ctx.node().index();
    let st = ctx.state();
    st.record_arrival(rel, attr, value_key);
    let mut checks = 0u64;
    // Clone the scoped groups out so rewriting below can borrow freely.
    let groups: Vec<(String, Vec<StoredQuery>)> = st
        .alqt
        .groups(rel, attr)
        .map(|(g, qs)| {
            let scoped: Vec<StoredQuery> = qs
                .iter()
                .filter(|sq| sq.index_id == index_id)
                .cloned()
                .collect();
            checks += scoped.len() as u64;
            (g.to_string(), scoped)
        })
        .filter(|(_, qs)| !qs.is_empty())
        .collect();
    if checks == 0 {
        return Ok(Vec::new());
    }
    ctx.metrics().add_rewriter_filtering(node, checks);
    Ok(groups)
}

/// T1 tuple arrival at a rewriter (Sections 4.3.2 / 4.4.2 / 4.4.3): rewrite
/// every triggered query, reindex each group's rewritten queries at the
/// value level with one `Join` message per group. `dedup_reindex` enables
/// DAI-T's rewriter memory ("a rewriter does not need to reindex the same
/// rewritten query more than once", Section 4.4.3).
pub(crate) fn t1_tuple_arrival(
    ctx: &mut NodeCtx<'_>,
    tuple: &Arc<Tuple>,
    attr: &str,
    index_id: Id,
    dedup_reindex: bool,
) -> Result<()> {
    let groups = triggered_groups(ctx, tuple, attr, index_id)?;
    let space = ctx.space();
    for (_group, stored) in groups {
        let mut items: Vec<RewrittenQuery> = Vec::new();
        let mut target: Option<Id> = None;
        for sq in &stored {
            if sq.index_attr != attr {
                continue;
            }
            let dis_side = sq.index_side.other();
            let dis_attr = sq
                .query
                .join_attr(dis_side)
                .expect("T1 validated at pose time")
                .to_string();
            let Some(rq) = RewrittenQuery::rewrite_attribute(
                &sq.query,
                sq.index_side,
                &sq.index_attr,
                &dis_attr,
                tuple,
            )?
            else {
                continue;
            };
            if dedup_reindex && !ctx.state().reindexed.insert(rq.key().to_string()) {
                continue;
            }
            let id = indexing::vindex_attr(
                space,
                sq.query.relation(dis_side),
                &dis_attr,
                rq.target().value(),
            );
            debug_assert!(target.is_none_or(|t| t == id), "group shares one evaluator");
            target = Some(id);
            items.push(rq);
        }
        if let (Some(id), false) = (target, items.is_empty()) {
            ctx.push(Effect::Send {
                id,
                msg: Message::Join {
                    items,
                    index_id: id,
                },
            });
        }
    }
    Ok(())
}

/// Matches one rewritten query against the local VLTT (Section 4.3.3),
/// accumulating notifications. Returns a typed protocol violation when the
/// rewritten query carries a value target (those never travel in plain
/// `Join` messages).
pub(crate) fn match_against_vltt(
    ctx: &mut NodeCtx<'_>,
    rq: &RewrittenQuery,
    matches: &mut Matches,
) -> Result<()> {
    let MatchTarget::Attribute { attr, value } = rq.target() else {
        return Err(ctx.violation(format!(
            "rewritten query {} carries a value target; T1 evaluators match attribute targets only",
            rq.key()
        )));
    };
    let mut value_key = String::with_capacity(24);
    value.canonical_into(&mut value_key);
    let node = ctx.node().index();
    let candidates: Vec<Arc<Tuple>> = ctx
        .state()
        .vltt
        .candidates(rq.free_relation(), attr, &value_key)
        .map(|e| Arc::clone(&e.tuple))
        .collect();
    ctx.metrics()
        .add_evaluator_filtering(node, candidates.len() as u64);
    let before = matches.len();
    for t in &candidates {
        if rq.matches(t)? {
            matches.add(rq, t)?;
        }
    }
    let (tick, produced) = (ctx.tick(), matches.len() - before);
    ctx.trace(|| TraceEvent::JoinEval {
        tick,
        node: node as u32,
        candidates: candidates.len() as u64,
        matches: produced,
    });
    Ok(())
}

/// Matches an arriving value-level tuple against the local VLQT
/// (Section 4.3.4), returning the accumulated matches.
pub(crate) fn match_vlqt_candidates(
    ctx: &mut NodeCtx<'_>,
    tuple: &Arc<Tuple>,
    attr: &str,
) -> Result<Matches> {
    let rel = tuple.relation();
    let value_key = tuple.canonical_of(attr)?;
    let node = ctx.node().index();
    let candidates: Vec<RewrittenQuery> = ctx
        .state()
        .vlqt
        .candidates(rel, attr, value_key)
        .map(|e| e.rq.clone())
        .collect();
    ctx.metrics()
        .add_evaluator_filtering(node, candidates.len() as u64);
    let mut matches = ctx.new_matches();
    for rq in &candidates {
        if rq.matches(tuple)? {
            matches.add(rq, tuple)?;
        }
    }
    let (tick, produced) = (ctx.tick(), matches.len());
    ctx.trace(|| TraceEvent::JoinEval {
        tick,
        node: node as u32,
        candidates: candidates.len() as u64,
        matches: produced,
    });
    Ok(matches)
}

/// Stores a value-level tuple in the VLTT, mirroring it onto successors
/// when k-successor replication is on.
pub(crate) fn store_value_tuple(ctx: &mut NodeCtx<'_>, entry: StoredTuple) {
    let (tick, node) = (ctx.tick(), ctx.node().index() as u32);
    ctx.trace(|| TraceEvent::IndexInsert {
        tick,
        node,
        table: "vltt",
        fresh: true, // the VLTT keeps every arrival (no dedup key)
    });
    if ctx.repl_k() > 0 {
        ctx.state().vltt.insert(entry.clone());
        ctx.push(Effect::Replicate {
            item: crate::replication::ReplicaItem::Tuple(entry),
        });
    } else {
        ctx.state().vltt.insert(entry);
    }
}
