//! Micro-benchmarks of the evaluation engine: per-algorithm tuple-insertion
//! cost (the operation every figure sweeps), query indexing, the JFRT
//! effect (E2's mechanism), and the SQL parser.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cq_engine::{Algorithm, EngineConfig, Network};
use cq_relational::{parse_query, Catalog, DataType, RelationSchema, Value};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(
        RelationSchema::of(
            "R",
            &[
                ("A", DataType::Int),
                ("B", DataType::Int),
                ("C", DataType::Int),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(
        RelationSchema::of(
            "S",
            &[
                ("D", DataType::Int),
                ("E", DataType::Int),
                ("F", DataType::Int),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c
}

fn loaded_network(alg: Algorithm, queries: usize, jfrt: bool) -> Network {
    let mut net = Network::new(
        EngineConfig::new(alg).with_nodes(256).with_jfrt(jfrt),
        catalog(),
    );
    let sql = "SELECT R.A, S.D FROM R, S WHERE R.B = S.E";
    for i in 0..queries {
        let poser = net.node_at(i % 256);
        net.pose_query_sql(poser, sql).unwrap();
    }
    net
}

/// The hot operation: inserting one tuple into a network with installed
/// queries (drives rewriting, reindexing, matching, notification).
fn bench_insert_tuple(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/insert-tuple");
    for alg in Algorithm::ALL {
        let mut net = loaded_network(alg, 50, true);
        let mut i = 0i64;
        group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &alg, |b, _| {
            b.iter(|| {
                i += 1;
                let from = net.node_at((i as usize) % 256);
                let rel = if i % 2 == 0 { "R" } else { "S" };
                black_box(
                    net.insert_tuple(
                        from,
                        rel,
                        vec![Value::Int(i), Value::Int(i % 32), Value::Int(0)],
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// E2's mechanism in isolation: reindex cost with the JFRT warm vs cold.
fn bench_jfrt(c: &mut Criterion) {
    let mut group = c.benchmark_group("e02/jfrt");
    for (label, jfrt) in [("with-jfrt", true), ("no-jfrt", false)] {
        let mut net = loaded_network(Algorithm::Sai, 50, jfrt);
        // Warm the caches with one pass over the value domain.
        for v in 0..32 {
            let from = net.node_at(v as usize);
            net.insert_tuple(from, "R", vec![Value::Int(0), Value::Int(v), Value::Int(0)])
                .unwrap();
        }
        let mut i = 0i64;
        group.bench_function(label, |b| {
            b.iter(|| {
                i += 1;
                let from = net.node_at((i as usize) % 256);
                black_box(
                    net.insert_tuple(
                        from,
                        "R",
                        vec![Value::Int(i), Value::Int(i % 32), Value::Int(0)],
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_pose_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/pose-query");
    for alg in [Algorithm::Sai, Algorithm::DaiT] {
        let mut net = Network::new(EngineConfig::new(alg).with_nodes(256), catalog());
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &alg, |b, _| {
            b.iter(|| {
                i += 1;
                let poser = net.node_at(i % 256);
                black_box(
                    net.pose_query_sql(poser, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_parser(c: &mut Criterion) {
    let cat = catalog();
    let mut group = c.benchmark_group("relational/parse");
    group.bench_function("t1", |b| {
        b.iter(|| {
            black_box(
                parse_query(
                    "SELECT R.A, S.D FROM R, S WHERE R.B = S.E AND S.F = 10",
                    &cat,
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("t2", |b| {
        b.iter(|| {
            black_box(
                parse_query(
                    "SELECT R.A, S.D FROM R, S WHERE 4*R.B + R.C + 8 = 5*S.E + S.D - S.F",
                    &cat,
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // short windows keep `cargo bench --workspace` minutes-scale;
    // trends matter more than microsecond precision here
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_insert_tuple, bench_jfrt, bench_pose_query, bench_parser
}
criterion_main!(benches);
