//! E15 — Figure "Effect in filtering load distribution of increasing the
//! network size for the most loaded nodes" (Section 5.4).
//!
//! The hot-spot view of E14: how the most-loaded nodes' filtering loads
//! evolve as the ring grows. Expected shape: the hottest *rewriters* are
//! pinned to `Hash(R + A)` regardless of N, so the very top of the curve
//! falls slowly — growing the network helps the median much more than the
//! maximum (this is what motivates the Section 4.7 replication scheme).

use cq_engine::Algorithm;
use cq_workload::WorkloadConfig;

use super::Scale;
use crate::harness::RunConfig;
use crate::parallel::run_many;
use crate::report::{fnum, Report};
use crate::stats;

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let queries = scale.pick(60, 5000);
    let tuples = scale.pick(300, 800);
    let sizes: Vec<usize> = scale.pick(vec![64, 128, 256, 512], vec![1000, 2500, 5000]);
    let mut report = Report::new(
        "E15",
        &format!("most-loaded nodes vs network size (Q={queries}, T={tuples})"),
        &[
            "N",
            "SAI max",
            "SAI p99",
            "DAI-T max",
            "DAI-T p99",
            "DAI-V max",
            "DAI-V p99",
        ],
    );
    let algs = [Algorithm::Sai, Algorithm::DaiT, Algorithm::DaiV];
    let mut cfgs = Vec::new();
    for &n in &sizes {
        for alg in algs {
            cfgs.push(RunConfig {
                algorithm: alg,
                nodes: n,
                queries,
                tuples,
                workload: WorkloadConfig {
                    domain: scale.pick(40, 400),
                    ..WorkloadConfig::default()
                },
                ..RunConfig::new(alg)
            });
        }
    }
    let mut results = run_many(&cfgs).into_iter();
    for &n in &sizes {
        let mut row = vec![n.to_string()];
        for _ in algs {
            let r = results.next().expect("one result per config");
            row.push(fnum(stats::max(&r.filtering)));
            row.push(fnum(stats::percentile(&r.filtering, 99.0)));
        }
        report.row(row);
    }
    report.note("paper: the hottest rewriters shrink much slower than the median as N grows");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_a_row_per_network_size() {
        let r = run(Scale::Quick);
        assert_eq!(r.len(), 4);
        // Max loads stay positive at every size.
        for line in r.to_csv().lines().skip(1) {
            let max: f64 = line.split(',').nth(1).unwrap().parse().unwrap();
            assert!(max > 0.0);
        }
    }
}
