//! The transport layer: message queues, multisend routing, JFRT-assisted
//! sends, the fault-injection pump with reliable delivery, and k-successor
//! replica mirroring.
//!
//! This layer moves [`Message`]s between nodes and accounts the traffic; it
//! never inspects algorithm-specific payloads. Algorithm logic lives behind
//! [`crate::protocol::Protocol`], and the message loop that ties the two
//! together is in [`crate::network::Network`].

use std::collections::VecDeque;

use cq_fasthash::FxHashMap;
use cq_overlay::{Id, NodeHandle};
use cq_relational::Notification;
use rand::Rng;

use crate::error::Result;
use crate::faults::{ChurnModel, Delivery, FaultPipe, MsgId};
use crate::indexing;
use crate::jfrt::JfrtLookup;
use crate::messages::Message;
use crate::metrics::TrafficKind;
use crate::network::Network;
use crate::protocol::Matches;
use crate::replication::ReplicaItem;
use crate::trace::TraceEvent;
use crate::wire;

/// One enqueued protocol message: the payload plus the transport envelope
/// the reliable-delivery layer needs (sender, resolved receiver, target
/// identifier, and whether retransmissions re-route by identifier).
pub(crate) struct Pending {
    /// Sending node (retransmissions originate here).
    pub(crate) from: NodeHandle,
    /// Resolved receiver.
    pub(crate) to: NodeHandle,
    /// The identifier the message was addressed to.
    pub(crate) target: Id,
    /// `true` for identifier-routed messages (retransmissions re-resolve the
    /// owner), `false` for node-addressed ones (direct notifications,
    /// replicas) which die with their receiver.
    pub(crate) reroute: bool,
    /// The payload.
    pub(crate) msg: Message,
    /// Trace identifier assigned at enqueue on the perfect-delivery path
    /// (the fault pipe allocates its own in `transmit`). Always `None` when
    /// tracing is off.
    pub(crate) trace_id: Option<MsgId>,
    /// Hop-by-hop route captured at routing time when tracing is on
    /// (unicast sends only; multisend batch members share a fan-out tree).
    pub(crate) trace_path: Option<Vec<u32>>,
}

impl Pending {
    /// An envelope with tracing fields unset (the enqueue path fills them).
    pub(crate) fn new(
        from: NodeHandle,
        to: NodeHandle,
        target: Id,
        reroute: bool,
        msg: Message,
    ) -> Self {
        Pending {
            from,
            to,
            target,
            reroute,
            msg,
            trace_id: None,
            trace_path: None,
        }
    }
}

/// The transport abstraction every backend implements: how envelopes enter
/// the delivery substrate, how they come back out in global FIFO order, and
/// the hooks the fault-injection / reliable-delivery pump needs.
///
/// Backends are selected by **enum dispatch** through [`ActiveTransport`]
/// (never `dyn`): the simulator's hot loop calls `enqueue`/`next_delivery`
/// once per protocol message, and a vtable there would defeat the batching
/// and kernel wins the delivery path is built around.
///
/// The contract `Network` relies on:
///
/// * `enqueue` is infallible — a backend whose send can fail (sockets)
///   defers the error and surfaces it from the next `next_delivery` call.
/// * `next_delivery` yields envelopes in exactly the order they were
///   enqueued, network-wide. The deterministic simulator and the TCP
///   backend therefore dispatch identical sequences for the same seed.
/// * The fault-pipe hooks (`take_pipe`/`restore_pipe`/`has_pipe`) expose
///   the optional reliable-delivery pump state. Only [`SimTransport`]
///   carries a pipe; backends without one return `None`/`false`, and the
///   pump paths are never entered for them.
pub(crate) trait Transport {
    /// Queues one envelope for delivery. Must not fail: backends with
    /// fallible sends record the error and report it from
    /// [`Transport::next_delivery`].
    fn enqueue(&mut self, p: Pending);

    /// Removes and returns the next envelope in network-global FIFO order.
    /// **Never blocks**: `None` means either the queue is drained
    /// ([`Transport::is_idle`] true) or the head envelope's payload has not
    /// finished arriving yet (socket backends; the driver calls
    /// [`Transport::poll`] and retries). Deferred send errors surface here.
    fn next_delivery(&mut self) -> Result<Option<Pending>>;

    /// The explicit I/O progress hook: socket backends flush backpressured
    /// writes, accept pending connections, and drain readable sockets. With
    /// `block` set, the call may wait (bounded) for readiness; otherwise it
    /// only services what is already ready. A no-op for in-memory backends.
    fn poll(&mut self, block: bool) -> Result<()>;

    /// Whether no envelopes are queued (socket backends: no envelopes in
    /// flight on their wires either).
    fn is_idle(&self) -> bool;

    /// Detaches the fault-injection + reliable-delivery pipe so the pump
    /// can run against `&mut Network`. `None` when the backend has no pipe.
    fn take_pipe(&mut self) -> Option<Box<FaultPipe>>;

    /// Reattaches a pipe detached by [`Transport::take_pipe`].
    fn restore_pipe(&mut self, pipe: Box<FaultPipe>);

    /// Whether a fault pipe is installed (drives the trace-id allocation
    /// and bundle-coalescing gates).
    fn has_pipe(&self) -> bool;

    /// Drains the backend's per-message-kind wire-byte counters, indexed
    /// like [`Message::KINDS`]. `None` for backends that don't serialize
    /// (the simulator accounts wire bytes in the fault pump instead).
    fn take_wire_bytes(&mut self) -> Option<[u64; 11]>;

    /// Drains the backend's aggregate socket statistics (syscalls, bytes,
    /// frames, backpressure, buffer-pool hit rate). `None` for backends
    /// that never touch a socket.
    fn take_socket_stats(&mut self) -> Option<crate::transport_tcp::SocketStats>;
}

/// The deterministic in-memory backend: a FIFO queue of envelopes and the
/// optional fault-injection pipe. This is the seed engine's transport,
/// unchanged in behavior, now behind the [`Transport`] trait.
pub(crate) struct SimTransport {
    /// FIFO queue of sent-but-not-yet-handled messages.
    pending: VecDeque<Pending>,
    /// The fault-injection + reliable-delivery pipe; `None` when message
    /// delivery is perfect (the default), in which case `pending` is
    /// drained FIFO exactly as the original engine did.
    pipe: Option<Box<FaultPipe>>,
}

impl SimTransport {
    /// Perfect-delivery transport (`pipe` installed at construction when
    /// faults are configured).
    pub(crate) fn new(pipe: Option<Box<FaultPipe>>) -> Self {
        SimTransport {
            pending: VecDeque::new(),
            pipe,
        }
    }
}

impl Transport for SimTransport {
    #[inline]
    fn enqueue(&mut self, p: Pending) {
        self.pending.push_back(p);
    }

    #[inline]
    fn next_delivery(&mut self) -> Result<Option<Pending>> {
        Ok(self.pending.pop_front())
    }

    #[inline]
    fn poll(&mut self, _block: bool) -> Result<()> {
        Ok(()) // in-memory delivery has no I/O to progress
    }

    #[inline]
    fn is_idle(&self) -> bool {
        self.pending.is_empty()
    }

    fn take_pipe(&mut self) -> Option<Box<FaultPipe>> {
        self.pipe.take()
    }

    fn restore_pipe(&mut self, pipe: Box<FaultPipe>) {
        self.pipe = Some(pipe);
    }

    #[inline]
    fn has_pipe(&self) -> bool {
        self.pipe.is_some()
    }

    fn take_wire_bytes(&mut self) -> Option<[u64; 11]> {
        None
    }

    fn take_socket_stats(&mut self) -> Option<crate::transport_tcp::SocketStats> {
        None
    }
}

/// The installed transport backend, dispatched by enum match so every call
/// is a direct (inlinable) branch rather than a vtable jump.
pub(crate) enum ActiveTransport {
    /// Deterministic in-memory delivery (the default).
    Sim(SimTransport),
    /// Real framed sockets over `std::net` loopback. Boxed so the enum —
    /// embedded in every `Network` — stays the size of the common variant.
    Tcp(Box<crate::transport_tcp::TcpTransport>),
}

impl Transport for ActiveTransport {
    #[inline]
    fn enqueue(&mut self, p: Pending) {
        match self {
            ActiveTransport::Sim(t) => t.enqueue(p),
            ActiveTransport::Tcp(t) => t.enqueue(p),
        }
    }

    #[inline]
    fn next_delivery(&mut self) -> Result<Option<Pending>> {
        match self {
            ActiveTransport::Sim(t) => t.next_delivery(),
            ActiveTransport::Tcp(t) => t.next_delivery(),
        }
    }

    #[inline]
    fn poll(&mut self, block: bool) -> Result<()> {
        match self {
            ActiveTransport::Sim(t) => t.poll(block),
            ActiveTransport::Tcp(t) => t.poll(block),
        }
    }

    #[inline]
    fn is_idle(&self) -> bool {
        match self {
            ActiveTransport::Sim(t) => t.is_idle(),
            ActiveTransport::Tcp(t) => t.is_idle(),
        }
    }

    fn take_pipe(&mut self) -> Option<Box<FaultPipe>> {
        match self {
            ActiveTransport::Sim(t) => t.take_pipe(),
            ActiveTransport::Tcp(t) => t.take_pipe(),
        }
    }

    fn restore_pipe(&mut self, pipe: Box<FaultPipe>) {
        match self {
            ActiveTransport::Sim(t) => t.restore_pipe(pipe),
            ActiveTransport::Tcp(t) => t.restore_pipe(pipe),
        }
    }

    #[inline]
    fn has_pipe(&self) -> bool {
        match self {
            ActiveTransport::Sim(t) => t.has_pipe(),
            ActiveTransport::Tcp(t) => t.has_pipe(),
        }
    }

    fn take_wire_bytes(&mut self) -> Option<[u64; 11]> {
        match self {
            ActiveTransport::Sim(t) => t.take_wire_bytes(),
            ActiveTransport::Tcp(t) => t.take_wire_bytes(),
        }
    }

    fn take_socket_stats(&mut self) -> Option<crate::transport_tcp::SocketStats> {
        match self {
            ActiveTransport::Sim(t) => t.take_socket_stats(),
            ActiveTransport::Tcp(t) => t.take_socket_stats(),
        }
    }
}

// The sending half: how messages leave a node. These are inherent methods
// of `Network` operating on the transport state; they touch routing, hop
// accounting and queues only — never algorithm logic.
impl Network {
    /// Queues one envelope. On the perfect-delivery path with tracing on,
    /// this is where the send becomes observable: a trace [`MsgId`] is
    /// allocated and a [`TraceEvent::MsgSend`] emitted (the fault pipe path
    /// defers both to `transmit`, which owns the real sequence allocator).
    pub(crate) fn enqueue(&mut self, mut p: Pending) {
        if self.trace_on() && !self.transport.has_pipe() {
            let slot = p.from.index();
            if slot >= self.trace_seq.len() {
                self.trace_seq.resize(slot + 1, 0);
            }
            let id = (slot as u32, self.trace_seq[slot]);
            self.trace_seq[slot] += 1;
            p.trace_id = Some(id);
            let path = p.trace_path.take();
            let (tick, to, target, kind) = (self.trace_tick(), p.to, p.target, p.msg.kind());
            self.trace(|| TraceEvent::MsgSend {
                tick,
                node: slot as u32,
                id,
                to: to.index() as u32,
                target,
                kind,
                path,
            });
        }
        self.transport.enqueue(p);
    }

    /// Routes `from → id`, returning the owner and hop count — and, only
    /// when tracing is on, the materialized hop path. [`cq_overlay::Ring::route`]
    /// walks the identical greedy path as `route_owner`, so hop accounting
    /// is bit-identical whether or not the path is captured.
    fn routed_owner(
        &self,
        from: NodeHandle,
        id: Id,
    ) -> Result<(NodeHandle, usize, Option<Vec<u32>>)> {
        if self.trace_on() {
            // capacity covers a full greedy route on a 2^16-node ring plus
            // endpoints, so tracing never reallocates mid-route
            let mut path = Vec::with_capacity(18);
            let (owner, hops) = self.ring.route_owner_path(from, id, &mut path)?;
            Ok((owner, hops, Some(path)))
        } else {
            let (owner, hops) = self.ring.route_owner(from, id)?;
            Ok((owner, hops, None))
        }
    }
    /// Sends a batch of messages from `node` using the configured multisend
    /// design, accounting traffic, and enqueues them at their owners.
    pub(crate) fn dispatch_from(
        &mut self,
        node: NodeHandle,
        targets: Vec<(Id, Message)>,
        kind: TrafficKind,
    ) -> Result<()> {
        if targets.is_empty() {
            return Ok(());
        }
        let ids: Vec<Id> = targets.iter().map(|(id, _)| *id).collect();
        let outcome = if self.config.recursive_multisend {
            self.ring.multisend_recursive(node, &ids)?
        } else {
            self.ring.multisend_iterative(node, &ids)?
        };
        self.metrics
            .record_traffic_batch(kind, targets.len() as u64, outcome.total_hops);
        let mut by_id: FxHashMap<Id, Vec<Message>> =
            FxHashMap::with_capacity_and_hasher(targets.len(), Default::default());
        for (id, msg) in targets {
            by_id.entry(id).or_default().push(msg);
        }
        // On the perfect-delivery, untraced path, coalesce each delivery
        // entry's consecutive run of messages into one `Bundle` envelope:
        // the receiver unwraps in order, so global dispatch order is exactly
        // the per-message order (the run sat consecutively at the queue head
        // either way, and its handler effects join the queue *behind* it).
        // The fault pipe must see logical messages individually (its RNG
        // draws are per transmission) and the tracer emits one `MsgSend` per
        // message, so both paths keep per-message enqueues.
        let bundle = self.config.batch_delivery && !self.transport.has_pipe() && !self.trace_on();
        for (owner, ids) in outcome.deliveries {
            if bundle {
                let mut run: Vec<Message> = Vec::new();
                let first = ids[0];
                for id in ids {
                    run.extend(by_id.remove(&id).into_iter().flatten());
                }
                match run.len() {
                    0 => {}
                    1 => {
                        // Invariant: the match arm guarantees exactly one element.
                        let msg = run.pop().expect("len checked");
                        self.enqueue(Pending::new(node, owner, first, true, msg));
                    }
                    _ => {
                        self.enqueue(Pending::new(node, owner, first, true, Message::Bundle(run)));
                    }
                }
            } else {
                for id in ids {
                    for msg in by_id.remove(&id).into_iter().flatten() {
                        self.enqueue(Pending::new(node, owner, id, true, msg));
                    }
                }
            }
        }
        debug_assert!(by_id.is_empty(), "every target id must be delivered");
        Ok(())
    }

    /// Sends one message from a rewriter toward a value-level identifier,
    /// consulting the JFRT when enabled (Section 4.7).
    pub(crate) fn send_via_jfrt(&mut self, from: NodeHandle, id: Id, msg: Message) -> Result<()> {
        let (owner, path) = if self.config.use_jfrt {
            let lookup = {
                let ring = &self.ring;
                self.nodes[from.index()]
                    .jfrt
                    .lookup(id, |h, id| ring.node(h).is_alive() && ring.owns(h, id))
            };
            match lookup {
                JfrtLookup::Hit(owner) => {
                    self.metrics.record_traffic(TrafficKind::Reindex, 1);
                    let path = self
                        .trace_on()
                        .then(|| vec![from.index() as u32, owner.index() as u32]);
                    (owner, path)
                }
                JfrtLookup::Miss => {
                    let (owner, hops, path) = self.routed_owner(from, id)?;
                    self.metrics.record_traffic(TrafficKind::Reindex, hops);
                    self.nodes[from.index()].jfrt.record(id, owner);
                    (owner, path)
                }
                JfrtLookup::Stale(_) => {
                    // one wasted hop to the stale node, then ordinary routing
                    let (owner, hops, path) = self.routed_owner(from, id)?;
                    self.metrics.record_traffic(TrafficKind::Reindex, hops + 1);
                    self.nodes[from.index()].jfrt.record(id, owner);
                    (owner, path)
                }
            }
        } else {
            let (owner, hops, path) = self.routed_owner(from, id)?;
            self.metrics.record_traffic(TrafficKind::Reindex, hops);
            (owner, path)
        };
        let mut p = Pending::new(from, owner, id, true, msg);
        p.trace_path = path;
        self.enqueue(p);
        Ok(())
    }

    /// Enqueues a node-addressed message (direct notification or replica):
    /// the receiver is known by handle, and retransmissions never re-route.
    pub(crate) fn push_direct(&mut self, from: NodeHandle, to: NodeHandle, msg: Message) {
        let mut p = Pending::new(from, to, self.ring.id_of(to), false, msg);
        if self.trace_on() {
            // one direct hop: sender → receiver
            p.trace_path = Some(vec![from.index() as u32, to.index() as u32]);
        }
        self.enqueue(p);
    }

    /// Mirrors one freshly inserted primary item onto `at`'s `k` first alive
    /// successors (no-op when replication is off).
    pub(crate) fn replicate(&mut self, at: NodeHandle, item: ReplicaItem) {
        let k = self.repl_k();
        if k == 0 {
            return;
        }
        for succ in self.ring.successors_of(at, k) {
            self.metrics.faults.replica_messages += 1;
            let (tick, node, to) = (self.trace_tick(), at.index() as u32, succ.index() as u32);
            self.trace(|| TraceEvent::Replicate { tick, node, to });
            self.push_direct(
                at,
                succ,
                Message::Replicate {
                    item: Box::new(item.clone()),
                },
            );
        }
    }

    /// Processes queued protocol messages until quiescence — through the
    /// perfect FIFO queue by default, or through the fault-injection pipe
    /// when one is configured.
    pub(crate) fn process_all(&mut self) -> Result<()> {
        if self.transport.has_pipe() {
            // Invariant: has_pipe() held on the previous line; take-and-restore
            // releases the &mut self borrow for the pump loop below.
            let mut pipe = self.transport.take_pipe().expect("checked above");
            let result = self.pump_faulty(&mut pipe);
            self.transport.restore_pipe(pipe);
            result
        } else {
            loop {
                // Opportunistically service ready sockets (no-op for the
                // simulator) so frames drain even while envelopes are ready.
                self.transport.poll(false)?;
                while let Some(p) = self.transport.next_delivery()? {
                    if let Some(id) = p.trace_id {
                        let (tick, node, kind) =
                            (self.trace_tick(), p.to.index() as u32, p.msg.kind());
                        self.trace(|| TraceEvent::MsgDeliver {
                            tick,
                            node,
                            id,
                            kind,
                        });
                    }
                    self.dispatch(p.to, p.msg)?;
                }
                if self.transport.is_idle() {
                    break;
                }
                // Envelopes are outstanding but the head frame has not
                // arrived: block (bounded) for socket readiness and retry.
                // The backend's stall timeout turns a lost frame into a
                // typed error instead of an infinite wait.
                self.transport.poll(true)?;
            }
            // Socket backends count real frame bytes as they write; fold
            // whatever this drain produced into the per-kind counters.
            if let Some(bytes) = self.transport.take_wire_bytes() {
                for (kind, b) in bytes.into_iter().enumerate() {
                    self.metrics.faults.bytes_sent[kind] += b;
                }
            }
            Ok(())
        }
    }

    /// The tick-based message pump used when faults are injected: sends pass
    /// through loss/duplication/delay draws, receivers dedup on `(sender,
    /// seq)`, unacknowledged messages retransmit with exponential backoff,
    /// and abrupt node failures strike between ticks.
    fn pump_faulty(&mut self, pipe: &mut FaultPipe) -> Result<()> {
        loop {
            // Fold freshly produced sends into the pipe (handlers and
            // promotions push onto the queue).
            while let Some(p) = self.transport.next_delivery()? {
                self.transmit(pipe, p);
            }
            if !pipe.busy() {
                // In-flight heartbeat probes may remain; they deliver
                // passively on ticks later work (or `Network::settle`)
                // forces.
                return Ok(());
            }
            self.pump_tick(pipe)?;
        }
    }

    /// One pump tick: advance the clock, inject failures, run the failure
    /// detector, deliver this tick's arrivals, fire retry checks. Also
    /// driven directly by [`Network::settle`] when the detector must make
    /// progress without protocol traffic.
    pub(crate) fn pump_tick(&mut self, pipe: &mut FaultPipe) -> Result<()> {
        pipe.tick += 1;
        self.inject_failures(pipe)?;
        self.recovery_tick(pipe)?;
        let now = pipe.tick;
        let batch = pipe.in_flight.remove(&now).unwrap_or_default();
        pipe.note_removed(&batch);
        for delivery in batch {
            match delivery {
                Delivery::Data { id, to, msg } => {
                    let node = to.index() as u32;
                    if !self.ring.node(to).is_alive() {
                        self.metrics.faults.messages_lost += 1;
                        // A non-probe message swallowed by a failed-but-
                        // undetected receiver is the recovery blind spot.
                        let probe = matches!(msg, Message::Ping { .. } | Message::Pong { .. });
                        if !probe
                            && self
                                .recovery
                                .as_ref()
                                .is_some_and(|r| r.undetected.contains_key(&node))
                        {
                            self.metrics.recovery.lost_in_detection_window += 1;
                            if matches!(
                                msg,
                                Message::Notify { .. } | Message::StoreNotifications { .. }
                            ) {
                                self.metrics.recovery.notifications_lost_in_window += 1;
                            }
                        }
                        self.trace(|| TraceEvent::FaultDrop {
                            tick: now,
                            node,
                            id,
                        });
                        continue;
                    }
                    if pipe.record_arrival(id, to) {
                        self.metrics.faults.dedup_suppressed += 1;
                        self.trace(|| TraceEvent::DedupSuppressed {
                            tick: now,
                            node,
                            id,
                        });
                    } else {
                        let kind = msg.kind();
                        self.trace(|| TraceEvent::MsgDeliver {
                            tick: now,
                            node,
                            id,
                            kind,
                        });
                        self.dispatch(to, msg)?;
                    }
                    // Ack every arrival (a duplicate usually means the
                    // previous ack was lost). Acks are subject to loss
                    // like any transmission. Probes never have an
                    // outstanding window, so they are never acked.
                    if pipe.cfg.retries_enabled() {
                        if let Some(o) = pipe.outstanding.get(&id) {
                            let sender = o.from;
                            if pipe.cfg.loss_rate > 0.0
                                && pipe.rng.gen::<f64>() < pipe.cfg.loss_rate
                            {
                                self.metrics.faults.messages_lost += 1;
                                self.trace(|| TraceEvent::FaultDrop {
                                    tick: now,
                                    node: sender.index() as u32,
                                    id,
                                });
                            } else {
                                pipe.schedule(now + 1, Delivery::Ack { id, to: sender });
                            }
                        }
                    }
                }
                Delivery::Ack { id, to } => {
                    // An ack addressed to a node that died in flight
                    // never closes the window; `maybe_retransmit` drops
                    // the dead sender's window on its next firing.
                    if self.ring.node(to).is_alive() {
                        pipe.outstanding.remove(&id);
                    }
                }
            }
        }
        for id in pipe.retry_at.remove(&now).unwrap_or_default() {
            self.maybe_retransmit(pipe, id, now);
        }
        Ok(())
    }

    /// Registers one fresh send with the pipe: assigns a `(sender, seq)`
    /// identifier, opens the ack window when retries are enabled, and
    /// schedules the transmission copies through the fault draws.
    pub(crate) fn transmit(&mut self, pipe: &mut FaultPipe, mut p: Pending) {
        let id = pipe.alloc_seq(p.from);
        // Exact wire cost of this transmission (acks are not payload frames
        // and are not counted). Only the fault pump pays for serialization
        // sizing; the perfect-delivery path never reaches here.
        self.metrics.faults.bytes_sent[p.msg.kind_index()] += wire::encoded_len(&p.msg);
        if self.trace_on() {
            let path = p.trace_path.take();
            let (tick, to, target, kind) = (pipe.tick, p.to, p.target, p.msg.kind());
            let node = p.from.index() as u32;
            self.trace(|| TraceEvent::MsgSend {
                tick,
                node,
                id,
                to: to.index() as u32,
                target,
                kind,
                path,
            });
        }
        // Heartbeat probes are fire-and-forget: no ack window, no
        // retransmission — an unanswered probe *is* the detector's signal.
        let probe = matches!(p.msg, Message::Ping { .. } | Message::Pong { .. });
        if pipe.cfg.retries_enabled() && !probe {
            pipe.open_window(id, &p.from, p.target, p.reroute, &p.to, &p.msg);
            pipe.schedule_retry(pipe.tick + pipe.cfg.ack_timeout, id);
        }
        self.schedule_copies(pipe, id, p.to, p.msg);
    }

    /// Draws duplication, loss and delay for one logical transmission and
    /// schedules the surviving copies.
    fn schedule_copies(&mut self, pipe: &mut FaultPipe, id: MsgId, to: NodeHandle, msg: Message) {
        let node = to.index() as u32;
        let mut copies = 1u32;
        if pipe.cfg.duplicate_rate > 0.0 && pipe.rng.gen::<f64>() < pipe.cfg.duplicate_rate {
            copies = 2;
            self.metrics.faults.messages_duplicated += 1;
            let tick = pipe.tick;
            self.trace(|| TraceEvent::FaultDuplicate { tick, node, id });
        }
        for _ in 0..copies {
            if pipe.cfg.loss_rate > 0.0 && pipe.rng.gen::<f64>() < pipe.cfg.loss_rate {
                self.metrics.faults.messages_lost += 1;
                let tick = pipe.tick;
                self.trace(|| TraceEvent::FaultDrop { tick, node, id });
                continue;
            }
            let mut at = pipe.tick + 1;
            if pipe.cfg.delay_rate > 0.0
                && pipe.cfg.max_delay > 0
                && pipe.rng.gen::<f64>() < pipe.cfg.delay_rate
            {
                at += pipe.rng.gen_range(1..=pipe.cfg.max_delay);
            }
            if at > pipe.tick + 1 {
                let (tick, extra) = (pipe.tick, at - pipe.tick - 1);
                self.trace(|| TraceEvent::FaultDelay {
                    tick,
                    node,
                    id,
                    extra,
                });
            }
            pipe.schedule(
                at,
                Delivery::Data {
                    id,
                    to,
                    msg: msg.clone(),
                },
            );
        }
    }

    /// A retry check fired for `id`: if the message is still unacknowledged,
    /// retransmit it (re-resolving the owner for identifier-routed messages)
    /// and schedule the next check with exponential backoff.
    fn maybe_retransmit(&mut self, pipe: &mut FaultPipe, id: MsgId, now: u64) {
        let Some(mut o) = pipe.take_outstanding(id) else {
            return; // acknowledged in the meantime
        };
        if !self.ring.node(o.from).is_alive() || o.attempt >= pipe.cfg.max_retries {
            return; // sender died, or we give up
        }
        o.attempt += 1;
        let next = now + pipe.backoff(o.attempt);
        if o.reroute {
            match self.ring.route_owner(o.from, o.target) {
                Ok((owner, hops)) => {
                    o.to = owner;
                    self.metrics.faults.retransmission_hops += hops as u64;
                }
                Err(_) => {
                    // The overlay is mid-repair; keep the window open and
                    // try again after the backoff.
                    pipe.reopen_window(id, o);
                    pipe.schedule_retry(next, id);
                    return;
                }
            }
        } else {
            if !self.ring.node(o.to).is_alive() {
                return; // node-addressed and the receiver is gone
            }
            self.metrics.faults.retransmission_hops += 1;
        }
        self.metrics.faults.retransmissions += 1;
        self.metrics.faults.bytes_sent[o.msg.kind_index()] += wire::encoded_len(&o.msg);
        let (node, attempt) = (o.from.index() as u32, o.attempt);
        self.trace(|| TraceEvent::Retransmit {
            tick: now,
            node,
            id,
            attempt,
        });
        self.schedule_copies(pipe, id, o.to, o.msg.clone());
        pipe.reopen_window(id, o);
        pipe.schedule_retry(next, id);
    }

    /// Injects scheduled and rate-driven abrupt node failures for the
    /// current tick, then repairs pointers and promotes replicas.
    fn inject_failures(&mut self, pipe: &mut FaultPipe) -> Result<()> {
        let mut failed = false;
        while pipe.sched_idx < pipe.cfg.scheduled_failures.len()
            && pipe.cfg.scheduled_failures[pipe.sched_idx] <= pipe.tick
        {
            pipe.sched_idx += 1;
            failed |= self.fail_random_alive(pipe);
        }
        if pipe.cfg.failure_rate > 0.0
            && pipe.failures_injected < pipe.cfg.max_failures
            && pipe.rng.gen::<f64>() < pipe.cfg.failure_rate
            && self.fail_random_alive(pipe)
        {
            pipe.failures_injected += 1;
            failed = true;
        }
        // Empirical churn: sessions sampled at pipe construction expire.
        if let ChurnModel::Empirical { max_events, .. } = &pipe.cfg.churn {
            let max_events = *max_events;
            let mut due = pipe.session_ends.split_off(&(pipe.tick + 1));
            std::mem::swap(&mut due, &mut pipe.session_ends);
            for slot in due.into_values().flatten() {
                if pipe.churn_events >= max_events || self.ring.len() <= 1 {
                    break;
                }
                let h = NodeHandle::from_index(slot as usize);
                if !self.ring.node(h).is_alive() {
                    continue;
                }
                if self.fail_node_state(h).is_ok() {
                    pipe.churn_events += 1;
                    failed = true;
                }
            }
        }
        // Without a detector, failures are repaired with oracle knowledge
        // on the very tick they happen — the seed behavior. With one, the
        // suspicion state machine must *discover* them first.
        if failed && !self.recovery_active() {
            self.ring.stabilize_all(1);
            self.promote_replicas()?;
        }
        Ok(())
    }

    /// Abruptly fails one pseudo-random alive node (never the last one).
    /// Returns whether a node was failed.
    fn fail_random_alive(&mut self, pipe: &mut FaultPipe) -> bool {
        if self.ring.len() <= 1 {
            return false;
        }
        let i = pipe.rng.gen_range(0..self.ring.len());
        // Invariant: gen_range draws below ring.len(), and the early return
        // above guarantees at least one alive node remains.
        let victim = self.ring.alive_nodes().nth(i).expect("index in range");
        self.fail_node_state(victim).is_ok()
    }

    /// Delivers accumulated join matches to their subscribers (Section 4.6).
    pub(crate) fn deliver_matches(&mut self, from: NodeHandle, matches: Matches) -> Result<()> {
        match matches {
            Matches::Full(notifications) => self.deliver_notifications(from, notifications),
            Matches::Counts(counts) => {
                // Counts mode sends no real messages, so delivery is
                // accounted here. A count only counts as *delivered* when
                // the subscriber is online to receive it; offline counts are
                // `notifications_stored_offline` only — mirroring the
                // full-retention path, where a store happens but no inbox
                // delivery (see DESIGN.md, "Fault model").
                for (subscriber, count) in counts {
                    if count == 0 {
                        continue;
                    }
                    match self.subscribers.get(&subscriber) {
                        Some(&h) if self.ring.node(h).is_alive() => {
                            self.metrics.notifications_delivered += count;
                            self.metrics.record_traffic(TrafficKind::Notify, 1);
                            let (tick, node) = (self.trace_tick(), h.index() as u32);
                            self.trace(|| TraceEvent::NotifyDelivered {
                                tick,
                                node,
                                count,
                                offline: false,
                            });
                        }
                        _ => {
                            self.metrics.notifications_stored_offline += count;
                            let id = indexing::subscriber_id(self.ring.space(), &subscriber);
                            let (owner, hops) = self.ring.route_owner(from, id)?;
                            self.metrics.record_traffic(TrafficKind::Notify, hops);
                            let (tick, node) = (self.trace_tick(), owner.index() as u32);
                            self.trace(|| TraceEvent::NotifyDelivered {
                                tick,
                                node,
                                count,
                                offline: true,
                            });
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Full-retention delivery: every batch becomes a real protocol message
    /// ([`Message::Notify`] for online subscribers, routed
    /// [`Message::StoreNotifications`] otherwise), so the fault layer can
    /// lose, duplicate and retransmit deliveries like any other traffic.
    /// `notifications_delivered` is counted by the receiving handlers — at
    /// actual inbox/offline-store arrival — fixing the old skew where sends
    /// were counted before (or without) storage happening.
    fn deliver_notifications(
        &mut self,
        from: NodeHandle,
        notifications: Vec<Notification>,
    ) -> Result<()> {
        if notifications.is_empty() {
            return Ok(());
        }
        // Group notifications per receiver into one message.
        let mut by_subscriber: FxHashMap<String, Vec<Notification>> = FxHashMap::default();
        for n in notifications {
            by_subscriber
                .entry(n.subscriber.clone())
                .or_default()
                .push(n);
        }
        for (subscriber, batch) in by_subscriber {
            match self.subscribers.get(&subscriber) {
                Some(&h) if self.ring.node(h).is_alive() => {
                    // Online at a known IP: one direct hop.
                    self.metrics.record_traffic(TrafficKind::Notify, 1);
                    self.push_direct(
                        from,
                        h,
                        Message::Notify {
                            notifications: batch,
                        },
                    );
                }
                _ => {
                    // Offline: route toward Successor(Id(n)) and store there.
                    let id = indexing::subscriber_id(self.ring.space(), &subscriber);
                    let (owner, hops, path) = self.routed_owner(from, id)?;
                    self.metrics.record_traffic(TrafficKind::Notify, hops);
                    let mut p = Pending::new(
                        from,
                        owner,
                        id,
                        true,
                        Message::StoreNotifications {
                            subscriber_id: id,
                            notifications: batch,
                        },
                    );
                    p.trace_path = path;
                    self.enqueue(p);
                }
            }
        }
        Ok(())
    }
}
