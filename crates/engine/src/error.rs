//! Engine error types.

use std::error::Error;
use std::fmt;

use cq_overlay::OverlayError;
use cq_relational::RelationalError;

use crate::config::Algorithm;

/// Errors produced by the continuous-query engine.
#[derive(Clone, Debug)]
pub enum EngineError {
    /// Error from the overlay substrate.
    Overlay(OverlayError),
    /// Error from the relational layer (parsing, typing, evaluation).
    Relational(RelationalError),
    /// The query class is not supported by the configured algorithm
    /// (e.g. a type-T2 query under SAI/DAI-Q/DAI-T, Section 4.5).
    UnsupportedByAlgorithm {
        /// The configured algorithm.
        algorithm: Algorithm,
        /// Human-readable detail.
        detail: String,
    },
    /// A protocol invariant was violated: a handler received a message its
    /// algorithm never produces (e.g. a plain `Join` under DAI-V), or a
    /// message payload was malformed for the handler that got it. Indicates
    /// a mis-wired [`crate::protocol::Protocol`] or a corrupted message, and
    /// fails the run with context instead of aborting the process.
    Protocol {
        /// Human-readable description of the violated invariant.
        detail: String,
    },
    /// The referenced node is not part of the network.
    UnknownNode,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Overlay(e) => write!(f, "overlay error: {e}"),
            EngineError::Relational(e) => write!(f, "relational error: {e}"),
            EngineError::UnsupportedByAlgorithm { algorithm, detail } => {
                write!(f, "query not supported by {algorithm}: {detail}")
            }
            EngineError::Protocol { detail } => {
                write!(f, "protocol violation: {detail}")
            }
            EngineError::UnknownNode => write!(f, "node is not part of the network"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Overlay(e) => Some(e),
            EngineError::Relational(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OverlayError> for EngineError {
    fn from(e: OverlayError) -> Self {
        EngineError::Overlay(e)
    }
}

impl From<RelationalError> for EngineError {
    fn from(e: RelationalError) -> Self {
        EngineError::Relational(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, EngineError>;
