//! # cq-sim — simulation harness and the paper's experiments
//!
//! Drives `cq-engine` networks over `cq-workload` streams and regenerates
//! every figure and table of the paper's evaluation (Chapter 5). Each
//! experiment lives in [`experiments`] under its DESIGN.md id (E1..E16, T1,
//! plus the EF1 fault-tolerance extension) and renders a text
//! [`report::Report`].
//!
//! ```
//! use cq_sim::experiments::{self, Scale};
//!
//! // A milliseconds-scale version of Figure "traffic cost and JFRT effect".
//! let report = experiments::e02_traffic_jfrt::run(Scale::Quick);
//! println!("{}", report.render());
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod experiments;
pub mod harness;
pub mod parallel;
pub mod report;
pub mod stats;

pub use cq_engine::{FaultConfig, FaultCounters, TraceEvent, TraceSummary};
pub use harness::{run, set_trace_dir, set_trace_format, RunConfig, RunResult, TraceFormat};
pub use parallel::{run_many, set_jobs};
pub use report::Report;
