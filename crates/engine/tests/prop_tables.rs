//! Property tests for the node-local tables: `extract_where` must
//! partition — every entry either stays or moves, nothing is lost or
//! duplicated — because churn-time key transfer is built on it.

use std::sync::Arc;

use cq_engine::tables::{Alqt, StoredQuery, StoredTuple, Vltt};
use cq_overlay::Id;
use cq_relational::{
    Catalog, DataType, Expr, JoinQuery, QueryKey, QuerySpec, RelationSchema, SelectItem, Side,
    Timestamp, Tuple, Value,
};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap())
        .unwrap();
    c.register(RelationSchema::of("S", &[("C", DataType::Int), ("D", DataType::Int)]).unwrap())
        .unwrap();
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alqt_extract_partitions(
        ids in prop::collection::vec(0u64..16, 1..40),
        threshold in 0u64..16,
    ) {
        let c = catalog();
        let mut t = Alqt::new();
        for (i, &id) in ids.iter().enumerate() {
            let q = Arc::new(
                JoinQuery::new(
                    QuerySpec {
                        key: QueryKey::derive("n", i as u64),
                        subscriber: "n".into(),
                        ins_time: Timestamp(0),
                        relations: ["R".into(), "S".into()],
                        select: vec![SelectItem { side: Side::Left, attr: "A".into() }],
                        conditions: [Expr::attr("B"), Expr::attr("C")],
                        filters: vec![],
                    },
                    &c,
                )
                .unwrap(),
            );
            t.insert(StoredQuery {
                index_id: Id(id),
                query: q,
                index_side: Side::Left,
                index_attr: "B".into(),
            });
        }
        let before = t.len();
        let moved = t.extract_where(|id| id.0 < threshold);
        prop_assert_eq!(moved.len() + t.len(), before, "partition loses nothing");
        prop_assert!(moved.iter().all(|e| e.index_id.0 < threshold));
        // remaining entries all fail the predicate
        let rest = t.drain_all();
        prop_assert!(rest.iter().all(|e| e.index_id.0 >= threshold));
    }

    #[test]
    fn vltt_extract_partitions(
        ids in prop::collection::vec(0u64..16, 1..40),
        threshold in 0u64..16,
    ) {
        let c = catalog();
        let schema = c.get("R").unwrap().clone();
        let mut t = Vltt::new();
        for (i, &id) in ids.iter().enumerate() {
            let tuple = Arc::new(
                Tuple::new(
                    schema.clone(),
                    vec![Value::Int(i as i64), Value::Int((i % 5) as i64)],
                    Timestamp(0),
                    i as u64,
                )
                .unwrap(),
            );
            t.insert(StoredTuple { index_id: Id(id), attr: "B".into(), tuple }).unwrap();
        }
        let before = t.len();
        let moved = t.extract_where(|id| id.0 < threshold);
        prop_assert_eq!(moved.len() + t.len(), before);
        prop_assert!(moved.iter().all(|e| e.index_id.0 < threshold));
        let rest = t.drain_all();
        prop_assert!(rest.iter().all(|e| e.index_id.0 >= threshold));
    }
}
