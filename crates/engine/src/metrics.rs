//! Load and traffic metrics (Section 5.1 / DESIGN.md).
//!
//! * **Filtering load** of a node: the number of query–tuple (or rewritten-
//!   query–tuple) candidate checks it performs.
//! * **Storage load** of a node: the number of items (queries, rewritten
//!   queries, tuples, stored notifications) it currently holds.
//! * **Traffic**: overlay hops and message counts, per protocol message
//!   category.

use std::fmt;

use cq_overlay::TrafficStats;

/// Categories of protocol messages whose traffic is accounted separately.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrafficKind {
    /// Indexing a query at the attribute level (`query(q, ...)`).
    QueryIndex,
    /// Indexing a tuple at the attribute + value levels
    /// (`al-index`/`vl-index`).
    TupleIndex,
    /// Reindexing rewritten queries at the value level (`join(q')`).
    Reindex,
    /// Notification delivery.
    Notify,
    /// Strategy probes: asking candidate rewriters for their statistics
    /// before choosing the index attribute (Section 4.3.6).
    Probe,
}

impl TrafficKind {
    /// All categories.
    pub const ALL: [TrafficKind; 5] = [
        TrafficKind::QueryIndex,
        TrafficKind::TupleIndex,
        TrafficKind::Reindex,
        TrafficKind::Notify,
        TrafficKind::Probe,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            TrafficKind::QueryIndex => "query-index",
            TrafficKind::TupleIndex => "tuple-index",
            TrafficKind::Reindex => "reindex",
            TrafficKind::Notify => "notify",
            TrafficKind::Probe => "probe",
        }
    }
}

impl fmt::Display for TrafficKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Per-node load counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeLoad {
    /// Candidate checks performed while acting as a rewriter
    /// (attribute-level filtering).
    pub rewriter_filtering: u64,
    /// Candidate checks performed while acting as an evaluator
    /// (value-level filtering).
    pub evaluator_filtering: u64,
}

impl NodeLoad {
    /// Total filtering load of the node.
    #[inline]
    pub fn filtering(&self) -> u64 {
        self.rewriter_filtering + self.evaluator_filtering
    }
}

/// Fault-injection and recovery counters (all zero when the robustness
/// layer is inactive). Kept separate from [`TrafficKind`] so enabling the
/// layer never changes the shape of existing traffic reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Message transmissions dropped by fault injection (or addressed to a
    /// node that died before delivery).
    pub messages_lost: u64,
    /// Extra message copies created by duplication faults.
    pub messages_duplicated: u64,
    /// Retransmissions issued by the reliable-delivery layer.
    pub retransmissions: u64,
    /// Overlay hops consumed by retransmissions (re-routing included).
    pub retransmission_hops: u64,
    /// Arrivals suppressed by receive-side dedup windows (duplicates and
    /// redundant retransmissions).
    pub dedup_suppressed: u64,
    /// Abrupt node failures injected by the fault layer.
    pub nodes_failed: u64,
    /// Replica entries promoted to primaries after a failure.
    pub replicas_promoted: u64,
    /// Replication messages sent (mirroring primaries onto successors).
    pub replica_messages: u64,
    /// Exact wire bytes sent per message kind, indexed like
    /// [`Message::KINDS`] — sized with the `engine::wire` codec, so reports
    /// state the true serialized cost of every transmission (initial sends
    /// and retransmissions; acks carry no payload frame and are excluded).
    /// Populated by the fault pump and by the TCP backend; the default
    /// perfect-delivery simulator path skips serialization sizing entirely
    /// and leaves these at zero.
    ///
    /// [`Message::KINDS`]: crate::messages::Message::KINDS
    pub bytes_sent: [u64; 11],
}

impl FaultCounters {
    /// Total wire bytes over every message kind.
    pub fn total_bytes_sent(&self) -> u64 {
        self.bytes_sent.iter().sum()
    }
}

/// Failure-detection and repair counters (`engine::recovery`), all zero
/// unless `SuspicionConfig::enabled`. Like [`FaultCounters`] they live
/// outside [`TrafficKind`] so enabling detection never changes the shape of
/// existing traffic reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Heartbeat probes sent (pings; pongs are not counted separately).
    pub heartbeats_sent: u64,
    /// Probe timeouts that moved a watch into the suspected state.
    pub suspects: u64,
    /// Suspicions confirmed: the watcher declared the target dead and
    /// triggered stabilization + replica promotion.
    pub confirms: u64,
    /// Suspicions (or confirmations) of nodes that were actually alive —
    /// slow links, not failures.
    pub false_suspects: u64,
    /// Actually-dead nodes detected (first confirm per failed node).
    pub detections: u64,
    /// Sum over detections of pump ticks from failure to confirmation
    /// (time-to-detect numerator; `detections` is the denominator).
    pub detect_ticks_total: u64,
    /// Failed nodes whose replica state was verified repaired by a clean
    /// anti-entropy round (or instantly when anti-entropy is disabled).
    pub repairs: u64,
    /// Sum over repairs of pump ticks from failure to verified repair.
    pub repair_ticks_total: u64,
    /// Anti-entropy digest comparisons performed (one per primary/successor
    /// pair per round).
    pub digest_exchanges: u64,
    /// Replica items re-mirrored by anti-entropy repair.
    pub repair_items: u64,
    /// Exact wire bytes of re-mirrored repair items: the serialized size of
    /// each repair's `Replicate` message under the `engine::wire` codec.
    pub repair_bytes: u64,
    /// Data messages lost because their receiver was dead but not yet
    /// detected (the recovery blind spot, notifications included).
    pub lost_in_detection_window: u64,
    /// The subset of `lost_in_detection_window` that carried notifications
    /// (`notify` / `store-notify`) — deliveries subscribers missed while
    /// detection lagged the failure.
    pub notifications_lost_in_window: u64,
}

/// Global metric registry for one simulation run.
#[derive(Clone, Debug)]
pub struct Metrics {
    loads: Vec<NodeLoad>,
    traffic: [TrafficStats; TrafficKind::ALL.len()],
    /// Number of notifications delivered to subscribers (with multiplicity).
    pub notifications_delivered: u64,
    /// Number of notifications routed to an offline subscriber's successor
    /// store (a subset of deliveries counted separately so recall analyses
    /// can split online and offline arrivals).
    pub notifications_stored_offline: u64,
    /// Fault-injection and recovery counters.
    pub faults: FaultCounters,
    /// Failure-detection and anti-entropy repair counters.
    pub recovery: RecoveryCounters,
}

fn kind_slot(kind: TrafficKind) -> usize {
    match kind {
        TrafficKind::QueryIndex => 0,
        TrafficKind::TupleIndex => 1,
        TrafficKind::Reindex => 2,
        TrafficKind::Notify => 3,
        TrafficKind::Probe => 4,
    }
}

impl Metrics {
    /// A registry for `n` node slots.
    pub fn new(n: usize) -> Self {
        Metrics {
            loads: vec![NodeLoad::default(); n],
            traffic: [TrafficStats::new(); TrafficKind::ALL.len()],
            notifications_delivered: 0,
            notifications_stored_offline: 0,
            faults: FaultCounters::default(),
            recovery: RecoveryCounters::default(),
        }
    }

    /// Grows the per-node vectors when nodes join after construction.
    pub fn ensure_slots(&mut self, n: usize) {
        if self.loads.len() < n {
            self.loads.resize(n, NodeLoad::default());
        }
    }

    /// Records rewriter-side filtering work at node `slot`.
    #[inline]
    pub fn add_rewriter_filtering(&mut self, slot: usize, checks: u64) {
        self.loads[slot].rewriter_filtering += checks;
    }

    /// Records evaluator-side filtering work at node `slot`.
    #[inline]
    pub fn add_evaluator_filtering(&mut self, slot: usize, checks: u64) {
        self.loads[slot].evaluator_filtering += checks;
    }

    /// Records one routed message of the given kind.
    #[inline]
    pub fn record_traffic(&mut self, kind: TrafficKind, hops: usize) {
        self.traffic[kind_slot(kind)].record(hops);
    }

    /// Records a batch (e.g. one multisend fan-out counted as `messages`
    /// logical messages over `hops` total hops).
    #[inline]
    pub fn record_traffic_batch(&mut self, kind: TrafficKind, messages: u64, hops: usize) {
        self.traffic[kind_slot(kind)].record_batch(messages, hops);
    }

    /// Traffic counters for one category.
    pub fn traffic(&self, kind: TrafficKind) -> TrafficStats {
        self.traffic[kind_slot(kind)]
    }

    /// Total traffic over all categories.
    pub fn total_traffic(&self) -> TrafficStats {
        let mut t = TrafficStats::new();
        for s in &self.traffic {
            t.merge(s);
        }
        t
    }

    /// Per-node load counters (indexed by node slot).
    pub fn loads(&self) -> &[NodeLoad] {
        &self.loads
    }

    /// Total filtering load over all nodes (`TF`).
    pub fn total_filtering(&self) -> u64 {
        self.loads.iter().map(NodeLoad::filtering).sum()
    }

    /// Resets per-node loads and traffic (e.g. to measure only the steady
    /// state after a warm-up phase).
    pub fn reset(&mut self) {
        for l in &mut self.loads {
            *l = NodeLoad::default();
        }
        self.traffic = [TrafficStats::new(); TrafficKind::ALL.len()];
        self.notifications_delivered = 0;
        self.notifications_stored_offline = 0;
        self.faults = FaultCounters::default();
        self.recovery = RecoveryCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filtering_sums_roles() {
        let mut m = Metrics::new(2);
        m.add_rewriter_filtering(0, 3);
        m.add_evaluator_filtering(0, 4);
        m.add_evaluator_filtering(1, 5);
        assert_eq!(m.loads()[0].filtering(), 7);
        assert_eq!(m.total_filtering(), 12);
    }

    #[test]
    fn traffic_by_kind() {
        let mut m = Metrics::new(1);
        m.record_traffic(TrafficKind::Reindex, 5);
        m.record_traffic_batch(TrafficKind::TupleIndex, 4, 12);
        assert_eq!(m.traffic(TrafficKind::Reindex).hops, 5);
        assert_eq!(m.traffic(TrafficKind::TupleIndex).messages, 4);
        assert_eq!(m.total_traffic().hops, 17);
        assert_eq!(m.total_traffic().messages, 5);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = Metrics::new(1);
        m.add_rewriter_filtering(0, 1);
        m.record_traffic(TrafficKind::Notify, 1);
        m.notifications_delivered = 9;
        m.notifications_stored_offline = 2;
        m.faults.messages_lost = 4;
        m.recovery.heartbeats_sent = 6;
        m.reset();
        assert_eq!(m.total_filtering(), 0);
        assert_eq!(m.total_traffic().messages, 0);
        assert_eq!(m.notifications_delivered, 0);
        assert_eq!(m.notifications_stored_offline, 0);
        assert_eq!(m.faults, FaultCounters::default());
        assert_eq!(m.recovery, RecoveryCounters::default());
    }

    #[test]
    fn ensure_slots_grows() {
        let mut m = Metrics::new(1);
        m.ensure_slots(3);
        m.add_rewriter_filtering(2, 1);
        assert_eq!(m.loads().len(), 3);
    }
}
