//! The value-level tuple table (VLTT, Section 4.3.5).
//!
//! "A two level hash table where tuples are indexed at the first level
//! according to their index attribute and at the second level according to
//! the value of this attribute in the tuple." Storing tuples at the value
//! level is what makes SAI (and DAI-Q) complete when a rewritten query
//! arrives after matching tuples were inserted.

use std::sync::Arc;

use cq_fasthash::FxHashMap;
use cq_overlay::Id;
use cq_relational::Tuple;

use super::keys::{bucket_mut, lookup_key, str_bucket_mut, StrPair};
use crate::error::Result;

/// A tuple stored at the value level together with the attribute it was
/// indexed by (`IndexA(t)`) and the identifier it was indexed under.
#[derive(Clone, Debug)]
pub struct StoredTuple {
    /// The value-level identifier (`Hash(R + A_i + v_i)`).
    pub index_id: Id,
    /// `IndexA(t)` — the attribute that routed the tuple here.
    pub attr: String,
    /// The tuple.
    pub tuple: Arc<Tuple>,
}

/// The two-level value-level tuple table.
///
/// Buckets are keyed by an owned `(relation, attr)` [`StrPair`] at the first
/// level and by the value's canonical form at the second; lookups borrow the
/// caller's `&str`s instead of allocating key strings (see
/// [`super::keys`]).
#[derive(Clone, Debug, Default)]
pub struct Vltt {
    buckets: FxHashMap<StrPair, FxHashMap<Box<str>, Vec<StoredTuple>>>,
    len: usize,
}

impl Vltt {
    /// An empty table.
    pub fn new() -> Self {
        Vltt::default()
    }

    /// Stores a tuple under `(relation, attr, value-of-attr)`. Errors when
    /// the tuple's schema lacks the index attribute (a corrupted entry —
    /// e.g. a malformed replica payload — rather than a caller bug).
    pub fn insert(&mut self, entry: StoredTuple) -> Result<()> {
        let tuple = Arc::clone(&entry.tuple);
        let value_key = tuple.canonical_of(&entry.attr)?;
        let by_value = bucket_mut(&mut self.buckets, tuple.relation(), &entry.attr);
        str_bucket_mut(by_value, value_key).push(entry);
        self.len += 1;
        Ok(())
    }

    /// The stored tuples a rewritten query targeting
    /// `(relation, attr = value)` must be matched against.
    pub fn candidates(
        &self,
        relation: &str,
        attr: &str,
        value_key: &str,
    ) -> impl Iterator<Item = &StoredTuple> {
        self.buckets
            .get(lookup_key(&(relation, attr)))
            .and_then(|m| m.get(value_key))
            .into_iter()
            .flatten()
    }

    /// Number of candidates for one arriving rewritten query — the
    /// evaluator's filtering work.
    pub fn candidate_count(&self, relation: &str, attr: &str, value_key: &str) -> usize {
        self.buckets
            .get(lookup_key(&(relation, attr)))
            .and_then(|m| m.get(value_key))
            .map_or(0, Vec::len)
    }

    /// Iterates every stored entry, in arbitrary order (anti-entropy
    /// digests; the digest combination is order-independent).
    pub fn entries(&self) -> impl Iterator<Item = &StoredTuple> {
        self.buckets
            .values()
            .flat_map(|by_value| by_value.values())
            .flatten()
    }

    /// Total stored tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes entries whose index identifier satisfies the predicate.
    pub fn extract_where(&mut self, mut pred: impl FnMut(Id) -> bool) -> Vec<StoredTuple> {
        let mut out = Vec::new();
        for by_value in self.buckets.values_mut() {
            for entries in by_value.values_mut() {
                let mut i = 0;
                while i < entries.len() {
                    if pred(entries[i].index_id) {
                        out.push(entries.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
            }
            by_value.retain(|_, v| !v.is_empty());
        }
        self.buckets.retain(|_, m| !m.is_empty());
        self.len -= out.len();
        out
    }

    /// Removes and returns all entries.
    pub fn drain_all(&mut self) -> Vec<StoredTuple> {
        self.extract_where(|_| true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_relational::{DataType, RelationSchema, Timestamp, Value};

    fn tuple(a: i64, b: i64) -> Arc<Tuple> {
        let schema = Arc::new(
            RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap(),
        );
        Arc::new(Tuple::new(schema, vec![Value::Int(a), Value::Int(b)], Timestamp(0), 0).unwrap())
    }

    #[test]
    fn insert_and_lookup_by_attr_and_value() {
        let mut t = Vltt::new();
        t.insert(StoredTuple {
            index_id: Id(0),
            attr: "A".into(),
            tuple: tuple(7, 1),
        })
        .unwrap();
        t.insert(StoredTuple {
            index_id: Id(0),
            attr: "A".into(),
            tuple: tuple(7, 2),
        })
        .unwrap();
        t.insert(StoredTuple {
            index_id: Id(0),
            attr: "B".into(),
            tuple: tuple(7, 1),
        })
        .unwrap();
        assert_eq!(t.len(), 3);
        let k7 = Value::Int(7).canonical();
        assert_eq!(t.candidate_count("R", "A", &k7), 2);
        assert_eq!(t.candidate_count("R", "B", &Value::Int(1).canonical()), 1);
        assert_eq!(t.candidate_count("R", "A", &Value::Int(9).canonical()), 0);
        assert_eq!(t.candidate_count("S", "A", &k7), 0);
    }

    #[test]
    fn extract_where_removes_matching() {
        let mut t = Vltt::new();
        t.insert(StoredTuple {
            index_id: Id(1),
            attr: "A".into(),
            tuple: tuple(1, 1),
        })
        .unwrap();
        t.insert(StoredTuple {
            index_id: Id(2),
            attr: "A".into(),
            tuple: tuple(2, 2),
        })
        .unwrap();
        let moved = t.extract_where(|id| id == Id(1));
        assert_eq!(moved.len(), 1);
        assert_eq!(t.len(), 1);
        let rest = t.drain_all();
        assert_eq!(rest.len(), 1);
        assert!(t.is_empty());
    }
}
