//! DAI-T — double-attribute indexing, tuple side (Section 4.4.3).
//!
//! Queries are indexed on *both* sides; evaluators store rewritten queries
//! only. Matching happens when value-level tuples arrive, and a rewriter
//! remembers which rewritten queries it has already reindexed so each is
//! sent at most once.

use std::borrow::Cow;
use std::sync::Arc;

use cq_overlay::Id;
use cq_relational::{JoinQuery, QueryRef, QueryType, RewrittenQuery, Side, Tuple};

use super::common;
use crate::config::Algorithm;
use crate::error::{EngineError, Result};
use crate::protocol::{Effect, NodeCtx, Protocol};
use crate::replication::ReplicaItem;
use crate::tables::StoredRewritten;
use crate::trace::TraceEvent;

/// The DAI-T protocol (Section 4.4.3).
#[derive(Clone, Copy, Debug, Default)]
pub struct DaiTProtocol;

impl Protocol for DaiTProtocol {
    fn name(&self) -> &'static str {
        "DAI-T"
    }

    fn validate_query(&self, query: &JoinQuery) -> Result<()> {
        if query.query_type() == QueryType::T2 {
            return Err(EngineError::UnsupportedByAlgorithm {
                algorithm: Algorithm::DaiT,
                detail: "type-T2 queries require DAI-V (Section 4.5)".to_string(),
            });
        }
        Ok(())
    }

    fn index_attr<'q>(
        &self,
        ctx: &mut NodeCtx<'_>,
        query: &'q JoinQuery,
        side: Side,
    ) -> Cow<'q, str> {
        common::default_index_attr(ctx, query, side)
    }

    fn on_pose_query(&self, ctx: &mut NodeCtx<'_>, query: &QueryRef) -> Result<()> {
        common::pose_at_sides(self, ctx, query, &Side::BOTH)
    }

    fn on_publish_tuple(&self, ctx: &mut NodeCtx<'_>, tuple: &Arc<Tuple>) -> Result<()> {
        common::publish_tuple(ctx, tuple, true);
        Ok(())
    }

    fn on_tuple_arrival(
        &self,
        ctx: &mut NodeCtx<'_>,
        tuple: Arc<Tuple>,
        attr: String,
        index_id: Id,
    ) -> Result<()> {
        // DAI-T's rewriter memory: reindex each rewritten query at most once.
        common::t1_tuple_arrival(ctx, &tuple, &attr, index_id, true)
    }

    fn on_value_tuple(
        &self,
        ctx: &mut NodeCtx<'_>,
        tuple: Arc<Tuple>,
        attr: String,
        index_id: Id,
    ) -> Result<()> {
        let _ = index_id; // match only — tuples are never stored
        let (st, mut fx) = ctx.split();
        let matches = common::match_vlqt_candidates(&mut fx, &st.vlqt, &tuple, &attr)?;
        fx.push(Effect::Deliver { matches });
        Ok(())
    }

    fn on_rewritten_query(
        &self,
        ctx: &mut NodeCtx<'_>,
        items: Vec<RewrittenQuery>,
        index_id: Id,
    ) -> Result<()> {
        // Store, never evaluate (tuples will come to us).
        let matches = ctx.new_matches();
        for rq in items {
            let entry = StoredRewritten { index_id, rq };
            let fresh;
            if ctx.repl_k() > 0 {
                fresh = ctx.state().vlqt.insert(entry.clone())?;
                if fresh {
                    ctx.push(Effect::Replicate {
                        item: ReplicaItem::Rewritten(entry),
                    });
                }
            } else {
                fresh = ctx.state().vlqt.insert(entry)?;
            }
            let (tick, node) = (ctx.tick(), ctx.node().index() as u32);
            ctx.trace(|| TraceEvent::IndexInsert {
                tick,
                node,
                table: "vlqt",
                fresh,
            });
        }
        ctx.push(Effect::Deliver { matches });
        Ok(())
    }
}
