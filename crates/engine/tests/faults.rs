//! The robustness layer end to end: message loss, duplication and
//! reordering under reliable delivery, and k-successor replication across
//! abrupt failures.

use cq_engine::{
    Algorithm, EngineConfig, FaultConfig, Network, Oracle, RingBufferSink, TraceEvent,
};
use cq_relational::{Catalog, DataType, RelationSchema, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap())
        .unwrap();
    c.register(RelationSchema::of("S", &[("D", DataType::Int), ("E", DataType::Int)]).unwrap())
        .unwrap();
    c
}

fn check_oracle(net: &Network, context: &str) {
    let mut oracle = Oracle::new();
    oracle.ingest(net.posed_queries(), net.inserted_tuples());
    assert_eq!(
        net.delivered_set(),
        oracle.expected().unwrap(),
        "{context}: delivered set must equal the oracle"
    );
}

/// A small scripted workload: two queries and a batch of tuples with
/// several join matches.
fn stream(net: &mut Network) {
    let a = net.node_at(0);
    let b = net.node_at(7);
    net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
        .unwrap();
    net.pose_query_sql(b, "SELECT R.A FROM R, S WHERE R.B = S.E AND S.D = 2")
        .unwrap();
    for i in 0..12i64 {
        net.insert_tuple(
            net.node_at((i % 20) as usize),
            "R",
            vec![Value::Int(i), Value::Int(i % 4)],
        )
        .unwrap();
        net.insert_tuple(
            net.node_at(((i + 3) % 20) as usize),
            "S",
            vec![Value::Int(2 + i % 2), Value::Int(i % 3)],
        )
        .unwrap();
    }
}

#[test]
fn reliable_pump_with_zero_rates_matches_oracle() {
    // Forcing every message through the tick-based pump without any fault
    // draw must change nothing observable.
    for alg in Algorithm::ALL {
        let fault = FaultConfig {
            reliable: true,
            ack_timeout: 2,
            max_retries: 8,
            ..FaultConfig::default()
        };
        let mut net = Network::new(
            EngineConfig::new(alg)
                .with_nodes(24)
                .with_seed(11)
                .with_fault(fault),
            catalog(),
        );
        stream(&mut net);
        assert_eq!(net.metrics().faults.messages_lost, 0);
        assert_eq!(net.metrics().faults.retransmissions, 0);
        check_oracle(&net, &format!("{alg} reliable"));
    }
}

#[test]
fn delivery_survives_message_loss() {
    // 20% loss (plus the profile's mild duplication and delay): acks and
    // retransmissions must still get every notification through.
    for alg in Algorithm::ALL {
        let mut net = Network::new(
            EngineConfig::new(alg)
                .with_nodes(24)
                .with_seed(12)
                .with_fault(FaultConfig::lossy(0.2, 21)),
            catalog(),
        );
        stream(&mut net);
        let f = net.metrics().faults;
        assert!(f.messages_lost > 0, "{alg}: losses must have been drawn");
        assert!(f.retransmissions > 0, "{alg}: losses force retransmissions");
        check_oracle(&net, &format!("{alg} lossy"));
    }
}

#[test]
fn duplicates_are_suppressed_exactly_once() {
    for alg in Algorithm::ALL {
        let fault = FaultConfig {
            duplicate_rate: 0.5,
            ack_timeout: 2,
            max_retries: 8,
            seed: 31,
            ..FaultConfig::default()
        };
        let mut net = Network::new(
            EngineConfig::new(alg)
                .with_nodes(24)
                .with_seed(13)
                .with_fault(fault),
            catalog(),
        );
        stream(&mut net);
        let f = net.metrics().faults;
        assert!(f.messages_duplicated > 0, "{alg}: duplicates must be drawn");
        assert!(
            f.dedup_suppressed > 0,
            "{alg}: receiver windows must drop the copies"
        );
        check_oracle(&net, &format!("{alg} duplicated"));
    }
}

#[test]
fn reordering_preserves_results() {
    // Pure delay-induced reordering, retries off: the protocol state
    // machines must be commutative over in-flight message order.
    for alg in Algorithm::ALL {
        let fault = FaultConfig {
            delay_rate: 0.6,
            max_delay: 5,
            seed: 41,
            ..FaultConfig::default()
        };
        let mut net = Network::new(
            EngineConfig::new(alg)
                .with_nodes(24)
                .with_seed(14)
                .with_fault(fault),
            catalog(),
        );
        stream(&mut net);
        assert_eq!(net.metrics().faults.messages_lost, 0);
        check_oracle(&net, &format!("{alg} reordered"));
    }
}

#[test]
fn single_failure_with_replication_preserves_index_state() {
    // With k=2 replication, any single abrupt failure followed by
    // stabilization must lose no index entries: later tuples still join
    // against state the victim held, and the delivered set stays exactly
    // the oracle's.
    for alg in Algorithm::ALL {
        for victim_idx in [5usize, 13, 21, 29] {
            let fault = FaultConfig {
                replication: 2,
                ..FaultConfig::default()
            };
            let mut net = Network::new(
                EngineConfig::new(alg)
                    .with_nodes(40)
                    .with_seed(15)
                    .with_fault(fault),
                catalog(),
            );
            let a = net.node_at(0);
            net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
                .unwrap();
            net.insert_tuple(a, "R", vec![Value::Int(1), Value::Int(7)])
                .unwrap();
            let victim = net.node_at(victim_idx);
            if victim == a {
                continue;
            }
            net.node_fail(victim).unwrap();
            net.stabilize(2).unwrap();
            net.insert_tuple(a, "S", vec![Value::Int(2), Value::Int(7)])
                .unwrap();
            assert_eq!(
                net.inbox(a).len(),
                1,
                "{alg}: join must survive the failure of node {victim_idx}"
            );
            check_oracle(&net, &format!("{alg} victim {victim_idx}"));
        }
    }
}

#[test]
fn failure_with_replication_preserves_offline_notifications() {
    // The Section 4.6 offline store is itself replicated: crash the node
    // holding a disconnected subscriber's notification, and the rejoining
    // subscriber must still receive it.
    for alg in Algorithm::ALL {
        let fault = FaultConfig {
            replication: 2,
            ..FaultConfig::default()
        };
        let mut net = Network::new(
            EngineConfig::new(alg)
                .with_nodes(40)
                .with_seed(16)
                .with_fault(fault),
            catalog(),
        );
        let a = net.node_at(0);
        let b = net.node_at(5);
        net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
            .unwrap();
        net.insert_tuple(b, "R", vec![Value::Int(1), Value::Int(7)])
            .unwrap();
        net.node_leave(a).unwrap();
        net.stabilize(2).unwrap();
        net.insert_tuple(b, "S", vec![Value::Int(2), Value::Int(7)])
            .unwrap();

        // Crash whichever node holds the stored notification.
        let owner = net
            .ring()
            .alive_nodes()
            .find(|&h| !net.node_state(h).offline_store.is_empty())
            .expect("one node stores the offline notification");
        net.node_fail(owner).unwrap();
        net.stabilize(2).unwrap();
        assert!(
            net.metrics().faults.replicas_promoted > 0,
            "{alg}: the successor must promote the replicated notification"
        );

        net.node_rejoin(a).unwrap();
        assert_eq!(
            net.inbox(a).len(),
            1,
            "{alg}: missed notification must survive the store owner's crash"
        );
    }
}

#[test]
fn offline_storage_metrics_count_arrivals_once() {
    // `notifications_delivered` counts actual arrivals (inbox or offline
    // store), and `notifications_stored_offline` counts only the latter.
    let mut net = Network::new(
        EngineConfig::new(Algorithm::Sai)
            .with_nodes(40)
            .with_seed(17),
        catalog(),
    );
    let a = net.node_at(0);
    let b = net.node_at(5);
    net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
        .unwrap();
    net.insert_tuple(b, "R", vec![Value::Int(1), Value::Int(7)])
        .unwrap();
    net.insert_tuple(b, "S", vec![Value::Int(2), Value::Int(7)])
        .unwrap();
    assert_eq!(net.metrics().notifications_delivered, 1);
    assert_eq!(
        net.metrics().notifications_stored_offline,
        0,
        "online delivery is not offline storage"
    );

    net.node_leave(a).unwrap();
    net.stabilize(2).unwrap();
    net.insert_tuple(b, "S", vec![Value::Int(3), Value::Int(7)])
        .unwrap();
    assert_eq!(
        net.metrics().notifications_delivered,
        2,
        "the stored notification counts as delivered exactly once"
    );
    assert_eq!(net.metrics().notifications_stored_offline, 1);
}

#[test]
fn retransmission_backoff_schedule_is_exponential_with_a_cap() {
    // Total loss pins the whole retry schedule: every window exhausts all
    // its retries, and the gap between attempt n and n+1 must be exactly
    // `ack_timeout << n`, with the shift capped at 6.
    let fault = FaultConfig {
        loss_rate: 1.0,
        reliable: true,
        ack_timeout: 1,
        max_retries: 9,
        seed: 51,
        ..FaultConfig::default()
    };
    let mut net = Network::new(
        EngineConfig::new(Algorithm::Sai)
            .with_nodes(16)
            .with_seed(19)
            .with_fault(fault),
        catalog(),
    );
    let sink = Arc::new(RingBufferSink::new(8192));
    net.set_tracer(sink.clone());
    let a = net.node_at(0);
    net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
        .unwrap();

    let mut sent: BTreeMap<(u32, u64), u64> = BTreeMap::new();
    let mut retries: BTreeMap<(u32, u64), Vec<(u64, u32)>> = BTreeMap::new();
    for ev in sink.events() {
        match ev {
            TraceEvent::MsgSend { tick, id, .. } => {
                sent.entry(id).or_insert(tick);
            }
            TraceEvent::Retransmit {
                tick, id, attempt, ..
            } => retries.entry(id).or_default().push((tick, attempt)),
            _ => {}
        }
    }
    assert!(!retries.is_empty(), "total loss must force retransmissions");
    for (id, seq) in retries {
        let attempts: Vec<u32> = seq.iter().map(|&(_, a)| a).collect();
        let expected: Vec<u32> = (1..=9).collect();
        assert_eq!(
            attempts, expected,
            "msg {id:?}: window exhausts all retries"
        );
        let t0 = sent[&id];
        assert_eq!(
            seq[0].0 - t0,
            1,
            "msg {id:?}: first retry after ack_timeout"
        );
        for w in seq.windows(2) {
            let [(t_prev, a_prev), (t_next, _)] = [w[0], w[1]];
            // backoff(n) = ack_timeout << min(n, 6)
            let gap = 1u64 << a_prev.min(6);
            assert_eq!(
                t_next - t_prev,
                gap,
                "msg {id:?}: gap after attempt {a_prev} must be {gap}"
            );
        }
    }
}

#[test]
fn exhausted_retry_windows_give_up_without_livelock() {
    // Sustained total loss: every window must stop after `max_retries`
    // attempts, the pump must still terminate, and nothing may be
    // delivered (or fabricated).
    let fault = FaultConfig {
        loss_rate: 1.0,
        reliable: true,
        ack_timeout: 2,
        max_retries: 3,
        seed: 52,
        ..FaultConfig::default()
    };
    let mut net = Network::new(
        EngineConfig::new(Algorithm::DaiT)
            .with_nodes(16)
            .with_seed(20)
            .with_fault(fault),
        catalog(),
    );
    let sink = Arc::new(RingBufferSink::new(8192));
    net.set_tracer(sink.clone());
    stream(&mut net);

    let mut max_attempt: BTreeMap<(u32, u64), u32> = BTreeMap::new();
    for ev in sink.events() {
        if let TraceEvent::Retransmit { id, attempt, .. } = ev {
            let e = max_attempt.entry(id).or_default();
            *e = (*e).max(attempt);
        }
    }
    assert!(!max_attempt.is_empty());
    assert!(
        max_attempt.values().all(|&a| a <= 3),
        "no window may exceed max_retries"
    );
    let f = net.metrics().faults;
    assert_eq!(
        f.retransmissions,
        3 * max_attempt.len() as u64,
        "every opened window retries exactly max_retries times"
    );
    assert!(
        net.delivered_set().is_empty(),
        "nothing can get through total loss"
    );
}

#[test]
fn dedup_absorbs_retransmit_racing_a_late_ack() {
    // An aggressive ack timeout under heavy delay: originals are still in
    // flight when their retransmissions fire, so receivers see both copies
    // and acks arrive after the next retry was already scheduled. The
    // dedup window must absorb every such race without fault-injected
    // duplicates being involved at all.
    let fault = FaultConfig {
        delay_rate: 0.9,
        max_delay: 6,
        reliable: true,
        ack_timeout: 1,
        max_retries: 8,
        seed: 53,
        ..FaultConfig::default()
    };
    for alg in Algorithm::ALL {
        let mut net = Network::new(
            EngineConfig::new(alg)
                .with_nodes(24)
                .with_seed(21)
                .with_fault(fault.clone()),
            catalog(),
        );
        stream(&mut net);
        let f = net.metrics().faults;
        assert_eq!(f.messages_duplicated, 0, "{alg}: no duplication was drawn");
        assert!(
            f.retransmissions > 0,
            "{alg}: delayed acks must trigger spurious retransmissions"
        );
        assert!(
            f.dedup_suppressed > 0,
            "{alg}: the second copy of a raced message must be suppressed"
        );
        check_oracle(&net, &format!("{alg} retransmit/ack race"));
    }
}

#[test]
fn replica_load_is_not_storage_load() {
    let fault = FaultConfig {
        replication: 2,
        ..FaultConfig::default()
    };
    let mut net = Network::new(
        EngineConfig::new(Algorithm::DaiT)
            .with_nodes(40)
            .with_seed(18)
            .with_fault(fault.clone()),
        catalog(),
    );
    let mut baseline = Network::new(
        EngineConfig::new(Algorithm::DaiT)
            .with_nodes(40)
            .with_seed(18),
        catalog(),
    );
    for n in [&mut net, &mut baseline] {
        let a = n.node_at(0);
        n.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
            .unwrap();
        n.insert_tuple(a, "R", vec![Value::Int(1), Value::Int(7)])
            .unwrap();
    }
    assert_eq!(
        net.storage_loads(),
        baseline.storage_loads(),
        "replicas never count toward storage load"
    );
    let replicas: usize = net
        .ring()
        .alive_nodes()
        .map(|h| net.node_state(h).replica_load())
        .sum();
    assert!(replicas > 0, "replication must actually mirror state");
    assert!(net.metrics().faults.replica_messages > 0);
}
