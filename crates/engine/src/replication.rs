//! k-successor state replication (the recovery half of the robustness
//! layer, see [`crate::faults`]).
//!
//! Every index-table entry and offline-store notification a node holds as a
//! *primary* is mirrored — at insert time — onto the node's `k` first alive
//! successors, the same nodes that take over its range when it disappears
//! (Chord's successor-list invariant). Replicas are held in a separate
//! [`ReplicaStore`]: they never answer queries, never count toward storage
//! load, and never appear in [`crate::Network::delivered_set`]. When a node
//! fails abruptly, its successor finds itself the new owner of the failed
//! range during stabilization and *promotes* the matching replicas into its
//! primary tables — the same `extract_where`/insert mechanics the existing
//! `transfer_matching` churn machinery uses — then re-mirrors the promoted
//! entries onto its own successors to restore redundancy.

use cq_fasthash::FxHashSet;
use cq_overlay::Id;
use cq_relational::Notification;

use crate::error::Result;

use crate::tables::{
    Alqt, StoredQuery, StoredRewritten, StoredTuple, StoredValueTuple, VStore, Vlqt, Vltt,
};

/// One primary state item mirrored onto a successor via
/// [`crate::Message::Replicate`].
#[derive(Clone, Debug)]
pub enum ReplicaItem {
    /// An ALQT entry (rewriter role).
    Query(StoredQuery),
    /// A VLQT entry (evaluator role, SAI/DAI-T).
    Rewritten(StoredRewritten),
    /// A VLTT entry (evaluator role, SAI/DAI-Q).
    Tuple(StoredTuple),
    /// A DAI-V evaluator-store entry with its `(group, value)` key.
    ValueTuple {
        /// The query-group key.
        group: String,
        /// Canonical join-condition value.
        value_key: String,
        /// The stored tuple.
        entry: StoredValueTuple,
    },
    /// One offline-store notification with the subscriber identifier it is
    /// held under.
    Offline {
        /// Identifier of the subscriber's key (`Hash(Key(n))`).
        id: Id,
        /// The held notification.
        notification: Notification,
    },
}

impl ReplicaItem {
    /// The identifier that decides which node's range the item belongs to —
    /// promotion extracts items whose identifier the holder now owns.
    pub fn index_id(&self) -> Id {
        match self {
            ReplicaItem::Query(e) => e.index_id,
            ReplicaItem::Rewritten(e) => e.index_id,
            ReplicaItem::Tuple(e) => e.index_id,
            ReplicaItem::ValueTuple { entry, .. } => entry.index_id,
            ReplicaItem::Offline { id, .. } => *id,
        }
    }

    /// Content hash used by the anti-entropy digests: equal mirrored items
    /// hash equally on the primary and on every successor, independent of
    /// table iteration order (digests combine hashes commutatively).
    pub fn digest_hash(&self) -> u64 {
        match self {
            ReplicaItem::Query(e) => hash_query(e),
            ReplicaItem::Rewritten(e) => hash_rewritten(e),
            ReplicaItem::Tuple(e) => hash_tuple(e),
            ReplicaItem::ValueTuple {
                group,
                value_key,
                entry,
            } => hash_value_tuple(group, value_key, entry),
            ReplicaItem::Offline { id, notification } => hash_offline(*id, notification),
        }
    }
}

/// [`std::hash::Hash`] through the engine's deterministic [`FxHasher`] —
/// anti-entropy digests must agree across runs and `--jobs` workers, so the
/// randomly keyed std hasher is out.
///
/// [`FxHasher`]: cq_fasthash::FxHasher
fn fx_hash<T: std::hash::Hash + ?Sized>(tag: u8, v: &T) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = cq_fasthash::FxHasher::default();
    tag.hash(&mut h);
    v.hash(&mut h);
    h.finish()
}

/// Digest hash of an ALQT entry (dedup key: query key + side + index id).
pub(crate) fn hash_query(e: &StoredQuery) -> u64 {
    fx_hash(
        1,
        &(e.index_id.0, &e.query.key().0, e.index_side, &e.index_attr),
    )
}

/// Digest hash of a VLQT entry. `Key(q')` is unique per (query, bound
/// values, target value), so it identifies the rewriting's full content.
pub(crate) fn hash_rewritten(e: &StoredRewritten) -> u64 {
    fx_hash(2, &(e.index_id.0, e.rq.key()))
}

/// Digest hash of a VLTT entry (tuple sequence numbers are globally unique).
pub(crate) fn hash_tuple(e: &StoredTuple) -> u64 {
    fx_hash(3, &(e.index_id.0, &e.attr, e.tuple.seq()))
}

/// Digest hash of a DAI-V store entry under its `(group, value)` key.
pub(crate) fn hash_value_tuple(group: &str, value_key: &str, e: &StoredValueTuple) -> u64 {
    fx_hash(4, &(e.index_id.0, group, value_key, e.side, e.tuple.seq()))
}

/// Digest hash of one offline-store notification.
pub(crate) fn hash_offline(id: Id, n: &Notification) -> u64 {
    fx_hash(5, &(id.0, n))
}

/// Primary state promoted out of a replica store after a failure, ready to
/// be inserted into the new owner's tables.
#[derive(Debug, Default)]
pub struct PromotedState {
    /// ALQT entries.
    pub queries: Vec<StoredQuery>,
    /// VLQT entries.
    pub rewritten: Vec<StoredRewritten>,
    /// VLTT entries.
    pub tuples: Vec<StoredTuple>,
    /// DAI-V store entries with their `(group, value)` keys.
    pub value_tuples: Vec<(String, String, StoredValueTuple)>,
    /// Offline-store notifications.
    pub offline: Vec<(Id, Notification)>,
}

impl PromotedState {
    /// Total number of promoted items.
    pub fn len(&self) -> usize {
        self.queries.len()
            + self.rewritten.len()
            + self.tuples.len()
            + self.value_tuples.len()
            + self.offline.len()
    }

    /// Whether nothing was promoted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Converts the promoted state back into mirrorable items (used when
    /// entries must be handed to another replica holder rather than
    /// inserted into primary tables — e.g. a voluntary leave).
    pub fn into_items(self) -> Vec<ReplicaItem> {
        let PromotedState {
            queries,
            rewritten,
            tuples,
            value_tuples,
            offline,
        } = self;
        let mut out = Vec::with_capacity(
            queries.len() + rewritten.len() + tuples.len() + value_tuples.len() + offline.len(),
        );
        out.extend(queries.into_iter().map(ReplicaItem::Query));
        out.extend(rewritten.into_iter().map(ReplicaItem::Rewritten));
        out.extend(tuples.into_iter().map(ReplicaItem::Tuple));
        out.extend(value_tuples.into_iter().map(|(group, value_key, entry)| {
            ReplicaItem::ValueTuple {
                group,
                value_key,
                entry,
            }
        }));
        out.extend(
            offline
                .into_iter()
                .map(|(id, notification)| ReplicaItem::Offline { id, notification }),
        );
        out
    }
}

/// Mirrored copies of other nodes' primary state, held by a successor.
///
/// Inserts are idempotent: the ALQT/VLQT tables dedup by their own keys, and
/// the VLTT/VStore/offline parts keep explicit seen-sets (keyed by the
/// globally unique tuple sequence number or the notification itself), so
/// delayed duplicates and post-promotion re-mirroring never inflate the
/// store.
#[derive(Clone, Debug, Default)]
pub struct ReplicaStore {
    alqt: Alqt,
    vlqt: Vlqt,
    vltt: Vltt,
    vstore: VStore,
    offline: Vec<(Id, Notification)>,
    vltt_seen: FxHashSet<(u64, Box<str>)>,
    vstore_seen: FxHashSet<(u64, Box<str>)>,
    offline_seen: FxHashSet<(Id, Notification)>,
}

impl ReplicaStore {
    /// An empty store.
    pub fn new() -> Self {
        ReplicaStore::default()
    }

    /// Mirrors one item; duplicates are ignored. Errors on a malformed
    /// item (e.g. a rewritten query without an attribute target, or a
    /// tuple whose schema lacks its index attribute) so a corrupted
    /// `Replicate` payload fails the run with context instead of aborting.
    pub fn insert(&mut self, item: ReplicaItem) -> Result<()> {
        match item {
            ReplicaItem::Query(e) => {
                self.alqt.insert(e);
            }
            ReplicaItem::Rewritten(e) => {
                self.vlqt.insert(e)?;
            }
            ReplicaItem::Tuple(e) => {
                if self
                    .vltt_seen
                    .insert((e.tuple.seq(), e.attr.as_str().into()))
                {
                    self.vltt.insert(e)?;
                }
            }
            ReplicaItem::ValueTuple {
                group,
                value_key,
                entry,
            } => {
                if self
                    .vstore_seen
                    .insert((entry.tuple.seq(), group.as_str().into()))
                {
                    self.vstore.insert(&group, &value_key, entry);
                }
            }
            ReplicaItem::Offline { id, notification } => {
                if self.offline_seen.insert((id, notification.clone())) {
                    self.offline.push((id, notification));
                }
            }
        }
        Ok(())
    }

    /// Total mirrored items currently held.
    pub fn len(&self) -> usize {
        self.alqt.len() + self.vlqt.len() + self.vltt.len() + self.vstore.len() + self.offline.len()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every mirrored item (the holder itself failed).
    pub fn clear(&mut self) {
        *self = ReplicaStore::default();
    }

    /// Extracts every item whose index identifier satisfies `pred` — called
    /// by the new owner of a failed range during stabilization, with
    /// `pred = |id| ring.owns(self, id)`.
    pub fn take_owned(&mut self, pred: impl Fn(Id) -> bool) -> PromotedState {
        let queries = self.alqt.extract_where(&pred);
        let rewritten = self.vlqt.extract_where(&pred);
        let tuples = self.vltt.extract_where(&pred);
        let value_tuples = self.vstore.extract_where(&pred);
        for e in &tuples {
            self.vltt_seen
                .remove(&(e.tuple.seq(), e.attr.as_str().into()));
        }
        for (group, _, e) in &value_tuples {
            self.vstore_seen
                .remove(&(e.tuple.seq(), group.as_str().into()));
        }
        let mut offline = Vec::new();
        let mut kept = Vec::new();
        for (id, n) in std::mem::take(&mut self.offline) {
            if pred(id) {
                self.offline_seen.remove(&(id, n.clone()));
                offline.push((id, n));
            } else {
                kept.push((id, n));
            }
        }
        self.offline = kept;
        PromotedState {
            queries,
            rewritten,
            tuples,
            value_tuples,
            offline,
        }
    }

    /// Extracts *everything* as mirrorable items — used when the holder
    /// leaves voluntarily and hands its replica duty to a successor.
    pub fn drain_items(&mut self) -> Vec<ReplicaItem> {
        self.take_owned(|_| true).into_items()
    }

    /// Collects the digest hashes of every held item whose index identifier
    /// satisfies `pred` into `out` (the anti-entropy diff side).
    pub(crate) fn hashes_where(&self, pred: impl Fn(Id) -> bool, out: &mut FxHashSet<u64>) {
        for e in self.alqt.entries() {
            if pred(e.index_id) {
                out.insert(hash_query(e));
            }
        }
        for e in self.vlqt.entries() {
            if pred(e.index_id) {
                out.insert(hash_rewritten(e));
            }
        }
        for e in self.vltt.entries() {
            if pred(e.index_id) {
                out.insert(hash_tuple(e));
            }
        }
        for (group, value_key, e) in self.vstore.entries() {
            if pred(e.index_id) {
                out.insert(hash_value_tuple(group, value_key, e));
            }
        }
        for (id, n) in &self.offline {
            if pred(*id) {
                out.insert(hash_offline(*id, n));
            }
        }
    }

    /// Order-independent digest `(entry count, commutative hash sum)` over
    /// the held items whose index identifier satisfies `pred`. Two stores
    /// holding the same item multiset produce the same digest regardless of
    /// insertion or iteration order.
    pub(crate) fn digest_where(&self, pred: impl Fn(Id) -> bool) -> (u64, u64) {
        let mut set = FxHashSet::default();
        self.hashes_where(pred, &mut set);
        digest_of(&set)
    }
}

/// Folds a hash set into the `(count, sum)` digest the anti-entropy round
/// compares. Wrapping addition keeps the combination commutative without
/// the cancellation a plain XOR would allow.
pub(crate) fn digest_of(hashes: &FxHashSet<u64>) -> (u64, u64) {
    let mut sum = 0u64;
    for h in hashes {
        sum = sum.wrapping_add(*h);
    }
    (hashes.len() as u64, sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_relational::{DataType, QueryKey, RelationSchema, Timestamp, Tuple, Value};
    use std::sync::Arc;

    fn tuple(seq: u64) -> Arc<Tuple> {
        let schema = Arc::new(
            RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap(),
        );
        Arc::new(
            Tuple::new(
                schema,
                vec![Value::Int(1), Value::Int(7)],
                Timestamp(0),
                seq,
            )
            .unwrap(),
        )
    }

    fn notification(v: i64) -> Notification {
        Notification {
            query_key: QueryKey::derive("n", 0),
            subscriber: "n".into(),
            values: vec![Value::Int(v)],
        }
    }

    #[test]
    fn duplicate_tuple_replicas_are_ignored() {
        let mut s = ReplicaStore::new();
        let mk = || {
            ReplicaItem::Tuple(StoredTuple {
                index_id: Id(5),
                attr: "A".into(),
                tuple: tuple(3),
            })
        };
        s.insert(mk()).unwrap();
        s.insert(mk()).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn duplicate_offline_replicas_are_ignored() {
        let mut s = ReplicaStore::new();
        s.insert(ReplicaItem::Offline {
            id: Id(9),
            notification: notification(1),
        })
        .unwrap();
        s.insert(ReplicaItem::Offline {
            id: Id(9),
            notification: notification(1),
        })
        .unwrap();
        s.insert(ReplicaItem::Offline {
            id: Id(9),
            notification: notification(2),
        })
        .unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn take_owned_partitions_by_identifier() {
        let mut s = ReplicaStore::new();
        s.insert(ReplicaItem::Tuple(StoredTuple {
            index_id: Id(10),
            attr: "A".into(),
            tuple: tuple(1),
        }))
        .unwrap();
        s.insert(ReplicaItem::Tuple(StoredTuple {
            index_id: Id(20),
            attr: "A".into(),
            tuple: tuple(2),
        }))
        .unwrap();
        s.insert(ReplicaItem::Offline {
            id: Id(10),
            notification: notification(1),
        })
        .unwrap();
        let promoted = s.take_owned(|id| id == Id(10));
        assert_eq!(promoted.len(), 2);
        assert_eq!(promoted.tuples.len(), 1);
        assert_eq!(promoted.offline.len(), 1);
        assert_eq!(s.len(), 1, "unowned replica stays dormant");
        // a promoted item can be mirrored back in later
        s.insert(ReplicaItem::Tuple(StoredTuple {
            index_id: Id(10),
            attr: "A".into(),
            tuple: tuple(1),
        }))
        .unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn value_tuple_replicas_dedup_by_seq_and_group() {
        let mut s = ReplicaStore::new();
        let mk = |seq| ReplicaItem::ValueTuple {
            group: "g".into(),
            value_key: "v".into(),
            entry: StoredValueTuple {
                index_id: Id(3),
                side: cq_relational::Side::Left,
                tuple: tuple(seq),
            },
        };
        s.insert(mk(1)).unwrap();
        s.insert(mk(1)).unwrap();
        s.insert(mk(2)).unwrap();
        assert_eq!(s.len(), 2);
        let promoted = s.take_owned(|_| true);
        assert_eq!(promoted.value_tuples.len(), 2);
        assert!(s.is_empty());
    }
}
