//! SAI — the single-attribute-index algorithm (Section 4.3).
//!
//! A query is indexed on *one* side (chosen by the configured
//! [`IndexStrategy`]); evaluators store both rewritten queries and tuples,
//! so either arrival order produces the match.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::sync::Arc;

use cq_overlay::Id;
use cq_relational::{JoinQuery, QueryRef, QueryType, RewrittenQuery, Side, Tuple};
use rand::Rng;

use super::common;
use crate::config::{Algorithm, IndexStrategy};
use crate::error::{EngineError, Result};
use crate::node::NodeState;
use crate::protocol::{Effect, NodeCtx, Protocol};
use crate::replication::ReplicaItem;
use crate::tables::{StoredRewritten, StoredTuple};
use crate::trace::TraceEvent;

/// The SAI protocol (Section 4.3).
#[derive(Clone, Copy, Debug, Default)]
pub struct SaiProtocol;

impl SaiProtocol {
    /// Picks the side to index the query by (Section 4.3.6): random, or by
    /// probing the two candidate rewriters' arrival statistics.
    fn choose_index_side(&self, ctx: &mut NodeCtx<'_>, query: &JoinQuery) -> Result<Side> {
        match ctx.config().strategy {
            IndexStrategy::Random => Ok(if ctx.rng().gen::<bool>() {
                Side::Left
            } else {
                Side::Right
            }),
            IndexStrategy::LowestRate => {
                let (l, r) = common::probe_rewriters(self, ctx, query)?;
                Ok(match l.0.cmp(&r.0) {
                    Ordering::Less => Side::Left,
                    Ordering::Greater => Side::Right,
                    Ordering::Equal => {
                        if ctx.rng().gen::<bool>() {
                            Side::Left
                        } else {
                            Side::Right
                        }
                    }
                })
            }
            IndexStrategy::MostDistinctValues => {
                let (l, r) = common::probe_rewriters(self, ctx, query)?;
                Ok(match l.1.cmp(&r.1) {
                    Ordering::Greater => Side::Left,
                    Ordering::Less => Side::Right,
                    Ordering::Equal => {
                        if ctx.rng().gen::<bool>() {
                            Side::Left
                        } else {
                            Side::Right
                        }
                    }
                })
            }
        }
    }
}

impl Protocol for SaiProtocol {
    fn name(&self) -> &'static str {
        "SAI"
    }

    fn validate_query(&self, query: &JoinQuery) -> Result<()> {
        if query.query_type() == QueryType::T2 {
            return Err(EngineError::UnsupportedByAlgorithm {
                algorithm: Algorithm::Sai,
                detail: "type-T2 queries require DAI-V (Section 4.5)".to_string(),
            });
        }
        Ok(())
    }

    fn index_attr<'q>(
        &self,
        ctx: &mut NodeCtx<'_>,
        query: &'q JoinQuery,
        side: Side,
    ) -> Cow<'q, str> {
        common::default_index_attr(ctx, query, side)
    }

    fn on_pose_query(&self, ctx: &mut NodeCtx<'_>, query: &QueryRef) -> Result<()> {
        let side = self.choose_index_side(ctx, query)?;
        common::pose_at_sides(self, ctx, query, &[side])
    }

    fn on_publish_tuple(&self, ctx: &mut NodeCtx<'_>, tuple: &Arc<Tuple>) -> Result<()> {
        common::publish_tuple(ctx, tuple, true);
        Ok(())
    }

    fn on_tuple_arrival(
        &self,
        ctx: &mut NodeCtx<'_>,
        tuple: Arc<Tuple>,
        attr: String,
        index_id: Id,
    ) -> Result<()> {
        common::t1_tuple_arrival(ctx, &tuple, &attr, index_id, false)
    }

    fn on_value_tuple(
        &self,
        ctx: &mut NodeCtx<'_>,
        tuple: Arc<Tuple>,
        attr: String,
        index_id: Id,
    ) -> Result<()> {
        // Match stored rewritten queries against the tuple (4.3.4) ...
        let (st, mut fx) = ctx.split();
        let matches = common::match_vlqt_candidates(&mut fx, &st.vlqt, &tuple, &attr)?;
        fx.push(Effect::Deliver { matches });
        // ... then store it for rewritten queries still to come.
        common::store_value_tuple(
            st,
            &mut fx,
            StoredTuple {
                index_id,
                attr,
                tuple,
            },
        )?;
        Ok(())
    }

    fn on_rewritten_query(
        &self,
        ctx: &mut NodeCtx<'_>,
        items: Vec<RewrittenQuery>,
        index_id: Id,
    ) -> Result<()> {
        let (st, mut fx) = ctx.split();
        let NodeState { vlqt, vltt, .. } = st;
        let repl = fx.repl_k() > 0;
        let mut matches = fx.new_matches();
        for rq in items {
            // Store first (dedup by key); only a *new* rewritten query is
            // evaluated against stored tuples — a duplicate "need only
            // store the information related to tuple t". `insert_fresh`
            // hands back the stored entry so the fresh path borrows it
            // instead of cloning the rewritten query.
            let stored = vlqt.insert_fresh(StoredRewritten { index_id, rq })?;
            let fresh = stored.is_some();
            let (tick, node) = (fx.tick(), fx.node().index() as u32);
            fx.trace(|| TraceEvent::IndexInsert {
                tick,
                node,
                table: "vlqt",
                fresh,
            });
            if let Some(entry) = stored {
                if repl {
                    fx.push(Effect::Replicate {
                        item: ReplicaItem::Rewritten(entry.clone()),
                    });
                }
                common::match_against_vltt(&mut fx, vltt, &entry.rq, &mut matches)?;
            }
        }
        fx.push(Effect::Deliver { matches });
        Ok(())
    }
}
