//! Overlay traffic accounting.
//!
//! The paper's primary network-cost metric is *overlay hops*. Every protocol
//! message routed through the ring records its hop count here; higher layers
//! keep one counter per message category.

/// Running totals for one category of messages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Number of logical messages sent.
    pub messages: u64,
    /// Total overlay hops those messages consumed.
    pub hops: u64,
}

impl TrafficStats {
    /// A zeroed counter.
    pub fn new() -> Self {
        TrafficStats::default()
    }

    /// Records one message that consumed `hops` overlay hops.
    #[inline]
    pub fn record(&mut self, hops: usize) {
        self.messages += 1;
        self.hops += hops as u64;
    }

    /// Records a batch of `messages` messages consuming `hops` total hops
    /// (e.g. one multisend fan-out).
    #[inline]
    pub fn record_batch(&mut self, messages: u64, hops: usize) {
        self.messages += messages;
        self.hops += hops as u64;
    }

    /// Folds another counter into this one.
    #[inline]
    pub fn merge(&mut self, other: &TrafficStats) {
        self.messages += other.messages;
        self.hops += other.hops;
    }

    /// Average hops per message (0 when nothing was sent).
    pub fn hops_per_message(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.hops as f64 / self.messages as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = TrafficStats::new();
        s.record(5);
        s.record(3);
        assert_eq!(s.messages, 2);
        assert_eq!(s.hops, 8);
        assert!((s.hops_per_message() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = TrafficStats {
            messages: 2,
            hops: 7,
        };
        let b = TrafficStats {
            messages: 3,
            hops: 4,
        };
        a.merge(&b);
        assert_eq!(
            a,
            TrafficStats {
                messages: 5,
                hops: 11
            }
        );
    }

    #[test]
    fn empty_average_is_zero() {
        assert_eq!(TrafficStats::new().hops_per_message(), 0.0);
    }
}
