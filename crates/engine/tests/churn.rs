//! Dynamicity: voluntary leaves with key transfer, failures, rejoins, and
//! the Section 4.6 offline-notification scenario.

use cq_engine::{Algorithm, EngineConfig, FaultConfig, Network, Oracle};
use cq_relational::{Catalog, DataType, RelationSchema, Value};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap())
        .unwrap();
    c.register(RelationSchema::of("S", &[("D", DataType::Int), ("E", DataType::Int)]).unwrap())
        .unwrap();
    c
}

fn check_oracle(net: &Network) {
    let mut oracle = Oracle::new();
    oracle.ingest(net.posed_queries(), net.inserted_tuples());
    assert_eq!(net.delivered_set(), oracle.expected().unwrap());
}

#[test]
fn voluntary_leave_transfers_state_and_preserves_results() {
    for alg in Algorithm::ALL {
        let mut net = Network::new(
            EngineConfig::new(alg).with_nodes(40).with_seed(1),
            catalog(),
        );
        let a = net.node_at(0);
        net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
            .unwrap();
        net.insert_tuple(a, "R", vec![Value::Int(1), Value::Int(7)])
            .unwrap();

        // Every node except the subscriber leaves — whatever nodes hold the
        // query, the rewritten query or the stored tuple, their state must
        // survive through successor transfers.
        let victims: Vec<_> = net
            .ring()
            .alive_nodes()
            .filter(|&h| h != a)
            .step_by(2)
            .collect();
        for v in victims {
            net.node_leave(v).unwrap();
        }
        net.stabilize(3).unwrap();

        net.insert_tuple(a, "S", vec![Value::Int(2), Value::Int(7)])
            .unwrap();
        assert_eq!(net.inbox(a).len(), 1, "{alg}: join must survive departures");
        check_oracle(&net);
    }
}

#[test]
fn offline_subscriber_receives_missed_notifications_on_rejoin() {
    // The Section 4.6 scenario: the subscriber disconnects, a notification
    // is produced meanwhile and stored at Successor(Id(n)); on reconnection
    // the subscriber "will receive all data related to Id(n) including the
    // missed notifications".
    for alg in Algorithm::ALL {
        let mut net = Network::new(
            EngineConfig::new(alg).with_nodes(40).with_seed(2),
            catalog(),
        );
        let a = net.node_at(0);
        let b = net.node_at(5);
        net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
            .unwrap();
        net.insert_tuple(b, "R", vec![Value::Int(1), Value::Int(7)])
            .unwrap();

        // Subscriber goes offline (voluntarily, transferring its keys).
        net.node_leave(a).unwrap();
        net.stabilize(2).unwrap();

        // The matching tuple arrives while the subscriber is away.
        net.insert_tuple(b, "S", vec![Value::Int(2), Value::Int(7)])
            .unwrap();
        assert!(
            net.inbox(a).is_empty(),
            "{alg}: offline node has no inbox yet"
        );
        let stored: usize = net
            .ring()
            .alive_nodes()
            .map(|h| net.node_state(h).offline_store.len())
            .sum();
        assert_eq!(
            stored, 1,
            "{alg}: notification must be stored for the offline node"
        );

        // Reconnection delivers the missed notification.
        net.node_rejoin(a).unwrap();
        assert_eq!(
            net.inbox(a).len(),
            1,
            "{alg}: missed notification delivered on rejoin"
        );
    }
}

#[test]
fn failures_lose_at_most_the_failed_nodes_state() {
    // Best-effort semantics: a failure may lose notifications, but the
    // network must keep routing and never produce *wrong* notifications.
    let mut net = Network::new(
        EngineConfig::new(Algorithm::DaiT)
            .with_nodes(40)
            .with_seed(3),
        catalog(),
    );
    let a = net.node_at(0);
    net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
        .unwrap();
    net.insert_tuple(a, "R", vec![Value::Int(1), Value::Int(7)])
        .unwrap();
    let victim = net.node_at(20);
    if victim != a {
        net.node_fail(victim).unwrap();
        net.stabilize(3).unwrap();
    }
    net.insert_tuple(a, "S", vec![Value::Int(2), Value::Int(7)])
        .unwrap();
    // Delivered notifications are a subset of the oracle's expectation.
    let mut oracle = Oracle::new();
    oracle.ingest(net.posed_queries(), net.inserted_tuples());
    let expected = oracle.expected().unwrap();
    for n in net.delivered_set() {
        assert!(expected.contains(&n), "spurious notification {n}");
    }
}

#[test]
fn replication_turns_lossy_failures_into_lossless_ones() {
    // The same failure scenario twice: without replication the network may
    // only *miss* notifications (never fabricate them); with k=1 the
    // successor's promoted replicas make the failure invisible.
    for alg in Algorithm::ALL {
        let build = |k: usize| {
            let fault = FaultConfig {
                replication: k,
                ..FaultConfig::default()
            };
            let mut net = Network::new(
                EngineConfig::new(alg)
                    .with_nodes(40)
                    .with_seed(7)
                    .with_fault(fault),
                catalog(),
            );
            let a = net.node_at(0);
            net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
                .unwrap();
            for i in 0..8i64 {
                net.insert_tuple(a, "R", vec![Value::Int(i), Value::Int(i % 3)])
                    .unwrap();
            }
            for idx in [8usize, 16, 24, 32] {
                let victim = net.node_at(idx);
                if victim == a {
                    continue;
                }
                net.node_fail(victim).unwrap();
                net.stabilize(2).unwrap();
            }
            for i in 0..8i64 {
                net.insert_tuple(a, "S", vec![Value::Int(i), Value::Int(i % 3)])
                    .unwrap();
            }
            net
        };

        let unreplicated = build(0);
        let mut oracle = Oracle::new();
        oracle.ingest(unreplicated.posed_queries(), unreplicated.inserted_tuples());
        let expected = oracle.expected().unwrap();
        let delivered = unreplicated.delivered_set();
        assert!(
            delivered.is_subset(&expected),
            "{alg}: failures must never fabricate notifications"
        );

        let replicated = build(1);
        assert_eq!(
            replicated.delivered_set(),
            expected,
            "{alg}: k=1 replication must lose nothing in the same scenario"
        );
    }
}

#[test]
fn departing_replica_holder_hands_copies_to_its_successor() {
    // Regression: a voluntary leave used to drop the replica entries the
    // departing node held *for other primaries*. If such a primary then
    // failed before its next re-mirroring, k=1 redundancy was silently
    // gone and its state was lost. The leave must hand the held copies to
    // the successor so the later failure stays lossless.
    for alg in Algorithm::ALL {
        let fault = FaultConfig {
            replication: 1,
            ..FaultConfig::default()
        };
        let mut net = Network::new(
            EngineConfig::new(alg)
                .with_nodes(40)
                .with_seed(9)
                .with_fault(fault),
            catalog(),
        );
        let a = net.node_at(0);
        net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
            .unwrap();
        for i in 0..8i64 {
            net.insert_tuple(a, "R", vec![Value::Int(i), Value::Int(i % 3)])
                .unwrap();
        }
        // Pick a primary that holds state, whose k=1 replica therefore
        // lives exactly on its first alive successor.
        let (victim, holder) = net
            .ring()
            .alive_nodes()
            .filter(|&h| h != a)
            .filter_map(|h| {
                let st = net.node_state(h);
                let busy = st.alqt.len() + st.vlqt.len() + st.vltt.len() + st.vstore.len() > 0;
                let succ = net.ring().first_alive_successor(h)?;
                (busy && succ != a && succ != h).then_some((h, succ))
            })
            .next()
            .expect("some non-subscriber primary holds state");
        // The replica holder leaves, then the primary fails before any
        // re-mirroring could run.
        net.node_leave(holder).unwrap();
        net.node_fail(victim).unwrap();
        net.stabilize(3).unwrap();
        for i in 0..8i64 {
            net.insert_tuple(a, "S", vec![Value::Int(i), Value::Int(i % 3)])
                .unwrap();
        }
        check_oracle(&net);
    }
}

#[test]
fn join_after_start_takes_over_range() {
    let mut net = Network::new(
        EngineConfig::new(Algorithm::Sai)
            .with_nodes(30)
            .with_seed(4),
        catalog(),
    );
    let a = net.node_at(0);
    net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
        .unwrap();
    net.insert_tuple(a, "R", vec![Value::Int(1), Value::Int(7)])
        .unwrap();
    // A node leaves, then rejoins (same identifier) — its former range moves
    // back to it, and the protocol keeps working end to end.
    let v = net.node_at(10);
    let v = if v == a { net.node_at(11) } else { v };
    net.node_leave(v).unwrap();
    net.stabilize(2).unwrap();
    net.insert_tuple(a, "R", vec![Value::Int(3), Value::Int(8)])
        .unwrap();
    net.node_rejoin(v).unwrap();
    net.insert_tuple(a, "S", vec![Value::Int(2), Value::Int(7)])
        .unwrap();
    net.insert_tuple(a, "S", vec![Value::Int(4), Value::Int(8)])
        .unwrap();
    assert_eq!(net.inbox(a).len(), 2);
    check_oracle(&net);
}
