//! # cq-poll — minimal readiness polling for the socket transport
//!
//! The engine's TCP backend (`cq_engine::transport_tcp`) is a single-threaded
//! event loop: every socket is nonblocking, and one [`Poller`] tells the loop
//! which sockets are readable or writable. This crate is the thin OS shim
//! under that loop — an epoll(7) wrapper on Linux and a poll(2) fallback on
//! other Unix systems — written against the C symbols `std` already links,
//! so the workspace stays dependency-free (the same offline constraint that
//! drove the vendored `rand`/`proptest` stand-ins).
//!
//! The API is deliberately tiny and level-triggered:
//!
//! * [`Poller::register`] / [`Poller::modify`] / [`Poller::deregister`]
//!   associate a file descriptor with a caller-chosen `u64` token and an
//!   [`Interest`] (readable and/or writable).
//! * [`Poller::wait`] blocks up to a timeout and fills a caller-owned
//!   [`Event`] buffer. Level-triggered semantics: a socket that still has
//!   unread bytes (or writable space) reports again on the next wait, so the
//!   loop never needs to drain a socket to exhaustion in one pass.
//!
//! Two `setsockopt` helpers ([`set_send_buffer`], [`set_recv_buffer`]) are
//! exposed so tests can shrink kernel socket buffers and force the write
//! path into backpressure deterministically.

#![warn(missing_docs)]
#![cfg(unix)]

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

/// Which readiness states a registration wants to hear about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor has bytes to read (or a pending accept, or
    /// a hangup — closed peers always surface as readable).
    pub readable: bool,
    /// Wake when the descriptor can accept more bytes.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// The descriptor is readable (bytes, a pending accept, or EOF).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
    /// The peer hung up or the descriptor errored. A read on the socket
    /// returns the queued bytes and then `Ok(0)` / the error — callers
    /// should treat this as "readable, then check for close".
    pub closed: bool,
}

/// Converts a `-1` C return into the thread's errno as [`io::Error`].
fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Millisecond timeout for the C poll interfaces: `None` blocks forever.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        // Round up so a nonzero timeout never busy-spins as zero.
        Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
    }
}

// =====================================================================
// Linux: epoll(7)
// =====================================================================
#[cfg(target_os = "linux")]
mod sys {
    use super::{cvt, timeout_ms, Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Mirror of the kernel's `struct epoll_event`. Packed on x86-64, where
    /// the kernel ABI declares it `__attribute__((packed))`.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy, Debug)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// The Linux poller: one epoll instance.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
        /// Number of live registrations (sizes the kernel event buffer).
        registered: usize,
        /// Reused kernel-side event buffer.
        buf: Vec<EpollEvent>,
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.readable {
            // RDHUP rides with read interest only: a half-closed peer must
            // not wake a registration that masked reads off (EOF already
            // consumed), or the event loop spins on the level trigger.
            m |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    impl Poller {
        /// Creates the epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall; the returned fd is owned by the Poller.
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller {
                epfd,
                registered: 0,
                buf: Vec::new(),
            })
        }

        /// Registers `fd` under `token` with the given interest.
        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) })?;
            self.registered += 1;
            Ok(())
        }

        /// Changes the interest (and token) of an already registered `fd`.
        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            // SAFETY: as in `register`.
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut ev) })?;
            Ok(())
        }

        /// Removes `fd` from the poller. Must be called before the
        /// descriptor is closed (epoll auto-deregisters on close, but the
        /// registration count would drift).
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: kernels since 2.6.9 accept a dummy event for DEL.
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) })?;
            self.registered = self.registered.saturating_sub(1);
            Ok(())
        }

        /// Waits up to `timeout` (`None` = forever) and appends readiness
        /// events to `out`. Returns the number of events appended; `0`
        /// means the timeout elapsed. EINTR retries internally.
        pub fn wait(
            &mut self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let cap = self.registered.clamp(8, 1024);
            self.buf.resize(cap, EpollEvent { events: 0, data: 0 });
            let n = loop {
                // SAFETY: `buf` is a live, correctly sized epoll_event array.
                let r = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        cap as i32,
                        timeout_ms(timeout),
                    )
                };
                match cvt(r) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &self.buf[..n] {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                    writable: bits & EPOLLOUT != 0,
                    closed: bits & (EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd is owned by this Poller and closed exactly once.
            unsafe { close(self.epfd) };
        }
    }
}

// =====================================================================
// Other Unix: poll(2)
// =====================================================================
#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{cvt, timeout_ms, Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: std::os::raw::c_uint, timeout: i32) -> i32;
    }

    /// The portable poller: a registration table replayed through poll(2)
    /// on every wait. Fine at the fleet sizes the transport runs (hundreds
    /// of sockets); Linux uses the epoll implementation instead.
    #[derive(Debug)]
    pub struct Poller {
        slots: Vec<(RawFd, u64, Interest)>,
        buf: Vec<PollFd>,
    }

    impl Poller {
        /// Creates an empty registration table.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                slots: Vec::new(),
                buf: Vec::new(),
            })
        }

        /// Registers `fd` under `token` with the given interest.
        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if self.slots.iter().any(|(f, _, _)| *f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.slots.push((fd, token, interest));
            Ok(())
        }

        /// Changes the interest (and token) of an already registered `fd`.
        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            for slot in &mut self.slots {
                if slot.0 == fd {
                    slot.1 = token;
                    slot.2 = interest;
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        /// Removes `fd` from the table.
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let before = self.slots.len();
            self.slots.retain(|(f, _, _)| *f != fd);
            if self.slots.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        /// Waits up to `timeout` (`None` = forever) and appends readiness
        /// events to `out`, returning how many were appended.
        pub fn wait(
            &mut self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            self.buf.clear();
            for (fd, _, interest) in &self.slots {
                let mut events = 0i16;
                if interest.readable {
                    events |= POLLIN;
                }
                if interest.writable {
                    events |= POLLOUT;
                }
                self.buf.push(PollFd {
                    fd: *fd,
                    events,
                    revents: 0,
                });
            }
            if self.buf.is_empty() {
                if let Some(d) = timeout {
                    std::thread::sleep(d.min(Duration::from_millis(50)));
                }
                return Ok(0);
            }
            loop {
                // SAFETY: `buf` is a live pollfd array of the given length.
                let r = unsafe {
                    poll(
                        self.buf.as_mut_ptr(),
                        self.buf.len() as std::os::raw::c_uint,
                        timeout_ms(timeout),
                    )
                };
                match cvt(r) {
                    Ok(_) => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
            let mut appended = 0;
            for (pfd, (_, token, _)) in self.buf.iter().zip(&self.slots) {
                let bits = pfd.revents;
                if bits == 0 {
                    continue;
                }
                out.push(Event {
                    token: *token,
                    readable: bits & (POLLIN | POLLHUP | POLLERR) != 0,
                    writable: bits & POLLOUT != 0,
                    closed: bits & (POLLHUP | POLLERR) != 0,
                });
                appended += 1;
            }
            Ok(appended)
        }
    }
}

/// Readiness poller: epoll(7) on Linux, poll(2) on other Unix systems.
/// See the module docs for the level-triggered contract.
#[derive(Debug)]
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// Creates a poller with no registrations.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: sys::Poller::new()?,
        })
    }

    /// Registers a descriptor under `token` with the given interest. The
    /// token comes back verbatim in every [`Event`] for this descriptor.
    pub fn register(
        &mut self,
        fd: &impl AsRawFd,
        token: u64,
        interest: Interest,
    ) -> io::Result<()> {
        self.inner.register(fd.as_raw_fd(), token, interest)
    }

    /// Replaces the interest (and token) of a registered descriptor.
    pub fn modify(&mut self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.modify(fd.as_raw_fd(), token, interest)
    }

    /// Removes a descriptor. Call before closing it.
    pub fn deregister(&mut self, fd: &impl AsRawFd) -> io::Result<()> {
        self.inner.deregister(fd.as_raw_fd())
    }

    /// Waits up to `timeout` (`None` blocks indefinitely, `Some(ZERO)` is a
    /// nonblocking check) and appends readiness events to `out`. Returns
    /// the number appended; `0` means the timeout elapsed with no events.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        self.inner.wait(out, timeout)
    }
}

// =====================================================================
// Socket-buffer helpers
// =====================================================================

#[cfg(target_os = "linux")]
mod sockopt_consts {
    pub const SOL_SOCKET: i32 = 1;
    pub const SO_SNDBUF: i32 = 7;
    pub const SO_RCVBUF: i32 = 8;
}
#[cfg(all(unix, not(target_os = "linux")))]
mod sockopt_consts {
    pub const SOL_SOCKET: i32 = 0xffff;
    pub const SO_SNDBUF: i32 = 0x1001;
    pub const SO_RCVBUF: i32 = 0x1002;
}

extern "C" {
    fn setsockopt(
        fd: i32,
        level: i32,
        optname: i32,
        optval: *const std::ffi::c_void,
        optlen: u32,
    ) -> i32;
}

fn set_buffer(fd: RawFd, opt: i32, bytes: usize) -> io::Result<()> {
    let val = bytes.min(i32::MAX as usize) as i32;
    // SAFETY: `val` is a live i32 and optlen matches its size.
    cvt(unsafe {
        setsockopt(
            fd,
            sockopt_consts::SOL_SOCKET,
            opt,
            (&val as *const i32).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    })
    .map(|_| ())
}

/// Shrinks (or grows) the kernel send buffer of a socket. The kernel may
/// round the value (Linux doubles it and enforces a floor of ~4.5 KiB);
/// tests use this to force partial writes and exercise backpressure.
pub fn set_send_buffer(sock: &impl AsRawFd, bytes: usize) -> io::Result<()> {
    set_buffer(sock.as_raw_fd(), sockopt_consts::SO_SNDBUF, bytes)
}

/// Shrinks (or grows) the kernel receive buffer of a socket.
pub fn set_recv_buffer(sock: &impl AsRawFd, bytes: usize) -> io::Result<()> {
    set_buffer(sock.as_raw_fd(), sockopt_consts::SO_RCVBUF, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    #[test]
    fn listener_reports_readable_on_pending_accept() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(&listener, 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert_eq!(n, 0, "no pending accept yet");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn stream_reports_readable_when_bytes_arrive_and_modify_swaps_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.register(&server, 1, Interest::READ).unwrap();
        let mut events = Vec::new();
        client.write_all(b"hi").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable && !events[0].writable);

        // Swap to write interest: an idle healthy socket is writable.
        poller.modify(&server, 2, Interest::WRITE).unwrap();
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 2);
        assert!(events[0].writable);

        poller.deregister(&server).unwrap();
        drop(client);
    }

    #[test]
    fn closed_peer_surfaces_as_readable_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.register(&server, 9, Interest::READ).unwrap();
        drop(client);
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].readable, "close surfaces as readable");
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 0, "EOF");
    }

    #[test]
    fn send_buffer_can_be_shrunk() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        set_send_buffer(&client, 4096).unwrap();
        set_recv_buffer(&client, 4096).unwrap();
    }
}
