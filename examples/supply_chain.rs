//! A three-way continuous join via the [`cq_engine::Pipeline`] — the
//! thesis's future-work direction (multi-way joins) realized by chaining
//! two-way stages through a derived relation.
//!
//! Scenario: match purchase orders to shipments to customs clearances as the
//! three streams arrive independently.
//!
//! ```text
//! cargo run --release --example supply_chain
//! ```

use cq_engine::{Algorithm, EngineConfig, Network, Pipeline};
use cq_relational::{Catalog, DataType, RelationSchema, Value};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(
        RelationSchema::of(
            "Orders",
            &[("OrderId", DataType::Int), ("Sku", DataType::Int)],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(
        RelationSchema::of(
            "Shipments",
            &[("Sku", DataType::Int), ("Container", DataType::Int)],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(
        RelationSchema::of(
            "Clearances",
            &[("Container", DataType::Int), ("Port", DataType::Str)],
        )
        .unwrap(),
    )
    .unwrap();
    // Derived: (OrderId, Container) pairs from Orders ⋈ Shipments.
    c.register(
        RelationSchema::of(
            "OrderShipments",
            &[("OrderId", DataType::Int), ("Container", DataType::Int)],
        )
        .unwrap(),
    )
    .unwrap();
    c
}

fn main() {
    let mut net = Network::new(EngineConfig::new(Algorithm::DaiT).with_nodes(96), catalog());
    let driver = net.node_at(0);
    let mut pipeline = Pipeline::new(driver);

    pipeline
        .add_stage(
            &mut net,
            "SELECT Orders.OrderId, Shipments.Container \
             FROM Orders, Shipments WHERE Orders.Sku = Shipments.Sku",
            "OrderShipments",
        )
        .unwrap();
    pipeline
        .add_final_stage(
            &mut net,
            "SELECT OrderShipments.OrderId, Clearances.Port \
             FROM OrderShipments, Clearances \
             WHERE OrderShipments.Container = Clearances.Container",
        )
        .unwrap();

    // The three streams publish from different nodes, out of order.
    let erp = net.node_at(10);
    let freight = net.node_at(50);
    let customs = net.node_at(80);

    net.insert_tuple(erp, "Orders", vec![Value::Int(5001), Value::Int(77)])
        .unwrap();
    net.insert_tuple(
        customs,
        "Clearances",
        vec![Value::Int(31), "Piraeus".into()],
    )
    .unwrap();
    net.insert_tuple(freight, "Shipments", vec![Value::Int(77), Value::Int(31)])
        .unwrap();
    net.insert_tuple(erp, "Orders", vec![Value::Int(5002), Value::Int(88)])
        .unwrap();
    pipeline.pump(&mut net).unwrap();

    // Order 5001 → container 31 → Piraeus. Order 5002's SKU never shipped.
    for n in pipeline.results(&net) {
        println!("order matched end to end: {n}");
    }
    assert_eq!(pipeline.results(&net).len(), 1);

    // A later clearance completes nothing new for 5001 (content dedup), but
    // a new shipment for SKU 88 completes order 5002 through the existing
    // clearance pipeline only when its container also clears.
    net.insert_tuple(freight, "Shipments", vec![Value::Int(88), Value::Int(32)])
        .unwrap();
    pipeline.pump(&mut net).unwrap();
    assert_eq!(
        pipeline.results(&net).len(),
        1,
        "container 32 not cleared yet"
    );

    net.insert_tuple(
        customs,
        "Clearances",
        vec![Value::Int(32), "Rotterdam".into()],
    )
    .unwrap();
    pipeline.pump(&mut net).unwrap();
    for n in pipeline.results(&net) {
        println!("final: {n}");
    }
    assert_eq!(pipeline.results(&net).len(), 2);
    println!("three-way continuous join complete");
}
