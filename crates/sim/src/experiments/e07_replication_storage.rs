//! E7 — Figure "Effect of the replication scheme in storage load
//! distribution" (Section 5.3).
//!
//! The flip side of E6: every query is stored at all `k` replicas, so total
//! attribute-level storage grows ~k-fold while per-node peaks stay bounded.
//! Expected shape: total query storage scales with k; the per-node storage
//! curve spreads over more nodes.

use cq_engine::Algorithm;
use cq_workload::WorkloadConfig;

use super::Scale;
use crate::harness::RunConfig;
use crate::parallel::run_many;
use crate::report::{fnum, Report};
use crate::stats;

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let nodes = scale.pick(128, 1024);
    let queries = scale.pick(60, 5000);
    let tuples = scale.pick(200, 800);
    let mut report = Report::new(
        "E7",
        &format!("storage-load distribution vs replication k (SAI, N={nodes}, Q={queries})"),
        &["k", "total storage", "max node", "gini", "nodes storing"],
    );
    let ks = [1usize, 2, 4, 8];
    let cfgs: Vec<RunConfig> = ks
        .into_iter()
        .map(|k| RunConfig {
            algorithm: Algorithm::Sai,
            nodes,
            queries,
            tuples,
            replication: k,
            workload: WorkloadConfig {
                domain: scale.pick(40, 400),
                ..WorkloadConfig::default()
            },
            ..RunConfig::new(Algorithm::Sai)
        })
        .collect();
    for (k, r) in ks.into_iter().zip(run_many(&cfgs)) {
        report.row(vec![
            k.to_string(),
            fnum(r.total_storage()),
            fnum(stats::max(&r.storage)),
            fnum(stats::gini(&r.storage)),
            r.storage.iter().filter(|&&l| l > 0.0).count().to_string(),
        ]);
    }
    report.note("paper: replication trades extra (replicated) storage for filtering balance");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_grows_total_storage() {
        let r = run(Scale::Quick);
        let totals: Vec<f64> = r
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(
            totals[3] > totals[0],
            "k=8 total {} !> k=1 total {}",
            totals[3],
            totals[0]
        );
    }
}
