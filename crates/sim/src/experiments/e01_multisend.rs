//! E1 — Figure "Recursive vs. iterative design for the multisend function"
//! (Section 5.2, Evaluation of the API).
//!
//! Sends one multisend to `k` random identifiers from a random node and
//! compares the total overlay hops of the two designs. Expected shape: both
//! are `O(k log N)`, but the recursive design uses markedly fewer total hops
//! because, once the message reaches the right region of the ring,
//! consecutive recipients are only a hop or two apart.

use cq_overlay::{Id, IdSpace, Ring};

use super::Scale;
use crate::report::{fnum, Report};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let n = scale.pick(512, 4096);
    let ks: Vec<usize> = scale.pick(vec![4, 16, 64, 128], vec![10, 50, 100, 250, 500]);
    let trials = scale.pick(3, 10);

    let ring = Ring::build(IdSpace::new(32), n, "node-");
    let mut report = Report::new(
        "E1",
        &format!("multisend: recursive vs iterative total hops (N = {n})"),
        &[
            "k",
            "recursive",
            "iterative",
            "iter/rec",
            "recursive makespan",
            "iterative makespan",
        ],
    );
    let mut rng_state = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    for &k in &ks {
        let (mut rec, mut ite, mut rec_ms, mut ite_ms) = (0usize, 0usize, 0usize, 0usize);
        for _ in 0..trials {
            let from = ring
                .alive_nodes()
                .nth((next() % n as u64) as usize)
                .unwrap();
            let ids: Vec<Id> = (0..k).map(|_| ring.space().id(next())).collect();
            let r = ring.multisend_recursive(from, &ids).expect("stable ring");
            let i = ring.multisend_iterative(from, &ids).expect("stable ring");
            rec += r.total_hops;
            ite += i.total_hops;
            rec_ms += r.makespan;
            ite_ms += i.makespan;
        }
        let t = trials as f64;
        report.row(vec![
            k.to_string(),
            fnum(rec as f64 / t),
            fnum(ite as f64 / t),
            fnum(ite as f64 / rec.max(1) as f64),
            fnum(rec_ms as f64 / t),
            fnum(ite_ms as f64 / t),
        ]);
    }
    report.note("paper: recursive beats iterative in practice, same O(k log N) bound");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recursive_wins_at_every_k() {
        let r = run(Scale::Quick);
        assert_eq!(r.len(), 4);
        let csv = r.to_csv();
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let rec: f64 = cells[1].parse().unwrap();
            let ite: f64 = cells[2].parse().unwrap();
            assert!(
                rec <= ite,
                "recursive {rec} should not exceed iterative {ite}"
            );
        }
    }
}
